//! Integration tests for the advisor daemon: concurrent clients against
//! a live `gpa-serve` on an ephemeral port.
//!
//! The acceptance bar for the subsystem: 8 concurrent clients over the
//! 21-app registry get responses byte-identical to `Session::run_one`,
//! a second wave of identical requests is answered from the report
//! store (cache hits observable via `status`), a full queue rejects
//! instead of growing, and shutdown is clean.

use gpa::core::schema;
use gpa::json::Json;
use gpa::pipeline::{AnalysisJob, Session};
use gpa::serve::{
    protocol, serve, serve_on, Request, Ring, ServeClient, ServerConfig, ServerEngine, WireOptions,
};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn test_server(config: ServerConfig) -> gpa::serve::ServerHandle {
    serve(Arc::new(Session::test()), config).expect("daemon binds an ephemeral port")
}

fn ephemeral() -> ServerConfig {
    ServerConfig { workers: 4, ..ServerConfig::ephemeral() }
}

/// The reference body: what `Session::run_one` yields, rendered exactly
/// as the daemon renders it.
fn reference_body(session: &Session, job: &AnalysisJob) -> String {
    protocol::analyze_body(&session.run_one(job).expect("reference run"), 1).compact()
}

#[test]
fn concurrent_clients_get_bytes_identical_to_run_one() {
    let handle = test_server(ephemeral());
    let addr = handle.local_addr();
    let reference = Session::test();
    let jobs: Vec<AnalysisJob> = reference.jobs_for_all_apps();
    assert_eq!(jobs.len(), 21);

    // 8 clients, each analyzing every app (first-come computes, the
    // rest hit the store — either way the bytes must match run_one).
    let bodies: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|client_idx| {
                let jobs = &jobs;
                scope.spawn(move || {
                    let mut client = ServeClient::connect(addr).expect("connect");
                    let mut out = Vec::new();
                    // Stagger the walk so clients collide on different apps.
                    for i in 0..jobs.len() {
                        let job = &jobs[(i + 3 * client_idx) % jobs.len()];
                        let response =
                            client.analyze(&job.app, job.variant).expect("analyze round-trip");
                        assert!(response.ok, "{}: {:?}", job, response.error);
                        out.push((job.clone(), response.result.expect("body").compact()));
                    }
                    out.sort_by(|(a, _), (b, _)| (&a.app, a.variant).cmp(&(&b.app, b.variant)));
                    out.into_iter().map(|(_, body)| body).collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });

    let mut sorted_jobs = jobs.clone();
    sorted_jobs.sort_by(|a, b| (&a.app, a.variant).cmp(&(&b.app, b.variant)));
    let expected: Vec<String> = sorted_jobs.iter().map(|j| reference_body(&reference, j)).collect();
    for (idx, client_bodies) in bodies.iter().enumerate() {
        assert_eq!(client_bodies, &expected, "client {idx} saw different bytes");
    }
    handle.shutdown();
    handle.join();
}

#[test]
fn second_wave_is_served_from_the_report_store() {
    let handle = test_server(ephemeral());
    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");
    let apps = ["rodinia/hotspot", "rodinia/gaussian", "rodinia/nw"];
    let first: Vec<String> = apps
        .iter()
        .map(|app| {
            let r = client.analyze(app, 0).expect("first wave");
            assert!(r.ok);
            r.result.unwrap().compact()
        })
        .collect();
    let mut cached_seen = 0;
    for (app, expected) in apps.iter().zip(&first) {
        let r = client.analyze(app, 0).expect("second wave");
        assert!(r.ok);
        cached_seen += usize::from(r.cached);
        assert_eq!(&r.result.unwrap().compact(), expected, "cached bytes identical");
    }
    assert_eq!(cached_seen, apps.len(), "entire second wave is cache hits");

    let status = client.status().expect("status").into_result().expect("ok");
    let store = status.field("store").unwrap();
    assert!(store.field("hits").unwrap().as_u64().unwrap() >= 3, "hits visible in metrics");
    assert_eq!(store.field("entries").unwrap().as_u64().unwrap(), 3);
    let ops = status.field("ops").unwrap();
    assert_eq!(ops.field("analyze").unwrap().as_u64().unwrap(), 6);
    handle.shutdown();
    handle.join();
}

#[test]
fn analyze_profile_decouples_profiling_from_advising() {
    let handle = test_server(ephemeral());
    let reference = Session::test();
    let job = AnalysisJob::new("rodinia/hotspot", 0);
    // "Client side": gather the profile locally (standing in for a real
    // CUPTI dump) and submit only the profile — the daemon must not
    // re-simulate.
    let (_, profile, _) = reference.profile_one(&job).expect("local profiling");
    let profile_doc = Json::parse(&profile.to_json()).expect("profile serializes");

    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");
    let response = client.analyze_profile(&job.app, job.variant, &profile_doc).expect("request");
    assert!(response.ok, "{:?}", response.error);
    let body = response.result.unwrap();

    let report = reference.advise_profile(&job, &profile).expect("local advising");
    let expected = protocol::profile_body(&job, &profile, &report, 1).compact();
    assert_eq!(body.compact(), expected, "daemon advice matches local advise_profile");

    // Same submission again: a content-addressed cache hit.
    let again = client.analyze_profile(&job.app, job.variant, &profile_doc).expect("repeat");
    assert!(again.cached, "identical profile submission hits the store");
    assert_eq!(again.result.unwrap().compact(), expected);
    handle.shutdown();
    handle.join();
}

/// The v2 negotiation contract: one daemon answers v1 and v2 clients
/// for the same request; the v1 body keeps the pre-v2 shape; each
/// version caches independently and byte-identically.
#[test]
fn daemon_answers_v1_and_v2_clients_for_the_same_request() {
    let handle = test_server(ephemeral());
    let reference = Session::test();
    let job = AnalysisJob::new("rodinia/hotspot", 0);
    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");

    // A client that never mentions `schema` gets the flat v1 body with
    // the pre-v2 field set, bytes equal to the local v1 rendering.
    let v1 = client.analyze(&job.app, job.variant).expect("v1 round-trip");
    assert!(v1.ok, "{:?}", v1.error);
    let v1_body = v1.result.unwrap();
    let keys: Vec<&str> = v1_body.entries().unwrap().iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        keys,
        ["app", "variant", "kernel", "cycles", "total_samples", "issue_ratio", "advice", "text"],
        "v1 clients see the unchanged field set"
    );
    assert_eq!(v1_body.compact(), reference_body(&reference, &job));

    // The same request with `schema: 2` carries the structured report.
    let v2 = client.analyze_with(&job.app, job.variant, &WireOptions::v2()).expect("v2");
    assert!(v2.ok, "{:?}", v2.error);
    let v2_body = v2.result.unwrap();
    assert_eq!(v2_body.field("schema").unwrap().as_u64().unwrap(), 2);
    let report = schema::report_from_json(v2_body.field("report").unwrap()).expect("v2 parses");
    let local = reference.run_one(&job).unwrap().report;
    assert_eq!(report, local, "daemon v2 report equals local advise");
    assert_eq!(
        v2_body.field("text").unwrap(),
        v1_body.field("text").unwrap(),
        "rendered text identical across schema versions"
    );

    // Both versions hit the store independently, byte-identically.
    let v1_again = client.analyze(&job.app, job.variant).expect("v1 repeat");
    assert!(v1_again.cached, "v1 repeat is a cache hit");
    assert_eq!(v1_again.result.unwrap().compact(), v1_body.compact());
    let v2_again = client.analyze_with(&job.app, job.variant, &WireOptions::v2()).expect("v2");
    assert!(v2_again.cached, "v2 repeat is a cache hit");
    assert_eq!(v2_again.result.unwrap().compact(), v2_body.compact());

    // Request options shape the body (and address the cache) per call.
    let mut top1 = WireOptions::v2();
    top1.request.top = Some(1);
    let top = client.analyze_with(&job.app, job.variant, &top1).expect("top-1");
    assert!(!top.cached, "different options are a different content address");
    let top_report =
        schema::report_from_json(top.result.unwrap().field("report").unwrap()).unwrap();
    assert_eq!(top_report.items.len(), 1);
    assert_eq!(top_report.items[0], local.items[0]);

    // `status` advertises the negotiable versions.
    let status = client.status().unwrap().into_result().unwrap();
    let versions: Vec<u64> = status
        .field("schemas")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|v| v.as_u64().unwrap())
        .collect();
    assert_eq!(versions, vec![1, 2]);
    handle.shutdown();
    handle.join();
}

/// `analyze_profile` negotiates the schema the same way `analyze` does.
#[test]
fn analyze_profile_negotiates_v2() {
    let handle = test_server(ephemeral());
    let reference = Session::test();
    let job = AnalysisJob::new("rodinia/nw", 0);
    let (_, profile, _) = reference.profile_one(&job).expect("local profiling");
    let profile_doc = Json::parse(&profile.to_json()).expect("profile serializes");

    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");
    let response = client
        .analyze_profile_with(&job.app, job.variant, &profile_doc, &WireOptions::v2())
        .expect("request");
    assert!(response.ok, "{:?}", response.error);
    let body = response.result.unwrap();
    let report = schema::report_from_json(body.field("report").unwrap()).expect("v2 parses");
    let local = reference.advise_profile(&job, &profile).expect("local advising");
    assert_eq!(report, local);
    handle.shutdown();
    handle.join();
}

/// The chunked-upload path: a large profile split into pieces streams
/// in as `profile_begin` / `profile_chunk`* / `profile_end` and must
/// produce the **same body and the same store entry** as submitting the
/// whole profile in one `analyze_profile` frame.
#[test]
fn chunked_upload_matches_whole_profile_submission() {
    let handle = test_server(ephemeral());
    let reference = Session::test();
    let job = AnalysisJob::new("rodinia/hotspot", 0);
    let (_, profile, _) = reference.profile_one(&job).expect("local profiling");
    let chunks: Vec<Json> = profile
        .split_chunks(3)
        .iter()
        .map(|c| Json::parse(&c.to_json()).expect("chunk serializes"))
        .collect();
    assert!(chunks.len() > 1, "profile large enough to actually split");

    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");
    let response = client
        .analyze_profile_chunked(&job.app, job.variant, &chunks, &WireOptions::default())
        .expect("chunked upload");
    assert!(response.ok, "{:?}", response.error);
    assert!(!response.cached, "first submission computes");
    let body = response.result.unwrap().compact();

    let report = reference.advise_profile(&job, &profile).expect("local advising");
    let expected = protocol::profile_body(&job, &profile, &report, 1).compact();
    assert_eq!(body, expected, "merged upload equals advising on the whole profile");

    // The merged upload joined the content-addressed cache: submitting
    // the same profile whole is a hit, and vice versa.
    let profile_doc = Json::parse(&profile.to_json()).expect("profile serializes");
    let whole = client.analyze_profile(&job.app, job.variant, &profile_doc).expect("request");
    assert!(whole.cached, "whole-profile submission hits the chunked upload's entry");
    assert_eq!(whole.result.unwrap().compact(), expected);

    // Upload ops are visible in the metrics.
    let status = client.status().expect("status").into_result().expect("ok");
    let ops = status.field("ops").unwrap();
    assert_eq!(ops.field("profile_begin").unwrap().as_u64().unwrap(), 1);
    assert_eq!(ops.field("profile_chunk").unwrap().as_u64().unwrap(), chunks.len() as u64);
    assert_eq!(ops.field("profile_end").unwrap().as_u64().unwrap(), 1);
    handle.shutdown();
    handle.join();
}

#[test]
fn upload_error_paths_leave_the_connection_usable() {
    let handle = test_server(ephemeral());
    let reference = Session::test();
    let job = AnalysisJob::new("rodinia/hotspot", 0);
    let (_, profile, _) = reference.profile_one(&job).expect("local profiling");
    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");

    // A bad job fails at `profile_begin`, before any chunk is streamed.
    let err = client.profile_begin("no/such-app", 0, &WireOptions::default()).unwrap_err();
    assert!(err.to_string().contains("unknown app"), "{err}");
    let err = client.profile_begin(&job.app, 99, &WireOptions::default()).unwrap_err();
    assert!(err.to_string().contains("variant out of range"), "{err}");

    // Chunks and ends against unknown ids are errors, not hangs.
    let doc = Json::parse(&profile.to_json()).unwrap();
    let r = client.profile_chunk(99, &doc).expect("round-trip");
    assert!(!r.ok);
    assert!(r.error.unwrap().contains("unknown upload id 99"));
    let r = client.profile_end(99).expect("round-trip");
    assert!(!r.ok);

    // Ending an upload with no chunks is an error; the id is consumed.
    let id = client.profile_begin(&job.app, job.variant, &WireOptions::default()).unwrap();
    let r = client.profile_end(id).expect("round-trip");
    assert!(!r.ok);
    assert!(r.error.unwrap().contains("has no chunks"));

    // A chunk from a *different* kernel configuration is rejected but
    // the upload keeps its previous state.
    let id = client.profile_begin(&job.app, job.variant, &WireOptions::default()).unwrap();
    assert!(client.profile_chunk(id, &doc).expect("first chunk").ok);
    let (_, other, _) =
        reference.profile_one(&AnalysisJob::new("rodinia/nw", 0)).expect("other profile");
    let other_doc = Json::parse(&other.to_json()).unwrap();
    let r = client.profile_chunk(id, &other_doc).expect("round-trip");
    assert!(!r.ok);
    assert!(r.error.unwrap().contains("chunk does not merge"), "merge mismatch is named");
    let done = client.profile_end(id).expect("finalize");
    assert!(done.ok, "upload survived the bad chunk: {:?}", done.error);

    // Open uploads are bounded per connection; aborting one frees its
    // slot without running an analysis.
    let mut ids = Vec::new();
    for _ in 0..8 {
        ids.push(client.profile_begin(&job.app, job.variant, &WireOptions::default()).unwrap());
    }
    let err = client.profile_begin(&job.app, job.variant, &WireOptions::default()).unwrap_err();
    assert!(err.to_string().contains("too many open uploads"), "{err}");
    let aborted = client.profile_abort(ids[0]).expect("abort round-trip");
    assert!(aborted.ok, "{:?}", aborted.error);
    assert!(client.profile_begin(&job.app, job.variant, &WireOptions::default()).is_ok());
    let r = client.profile_abort(ids[0]).expect("round-trip");
    assert!(!r.ok, "double abort is an unknown id");
    handle.shutdown();
    handle.join();
}

/// Uploads bound what the daemon retains: at most 64 chunks per upload
/// (each chunk can add up to a frame's worth of PC entries to the
/// running merge, so the count cap is the memory cap).
#[test]
fn upload_chunk_count_is_bounded() {
    let handle = test_server(ephemeral());
    let reference = Session::test();
    let job = AnalysisJob::new("rodinia/hotspot", 0);
    let (_, profile, _) = reference.profile_one(&job).expect("local profiling");
    // An empty chunk (no PCs, zero totals) is valid and merges with
    // anything — cheap fuel for hitting the count cap.
    let empty = Json::parse(&profile.empty_like().to_json()).unwrap();
    let full = Json::parse(&profile.to_json()).unwrap();

    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");
    let id = client.profile_begin(&job.app, job.variant, &WireOptions::default()).unwrap();
    assert!(client.profile_chunk(id, &full).expect("real chunk").ok);
    for _ in 0..63 {
        assert!(client.profile_chunk(id, &empty).expect("filler chunk").ok);
    }
    let over = client.profile_chunk(id, &empty).expect("round-trip");
    assert!(!over.ok, "65th chunk must be rejected");
    assert!(over.error.unwrap().contains("64 chunks"), "limit is named");
    // The upload is still finalizable, and empty chunks were identity
    // merges: the result equals advising on the original profile.
    let done = client.profile_end(id).expect("finalize");
    assert!(done.ok, "{:?}", done.error);
    let report = reference.advise_profile(&job, &profile).expect("local advising");
    let expected = protocol::profile_body(&job, &profile, &report, 1).compact();
    assert_eq!(done.result.unwrap().compact(), expected);
    handle.shutdown();
    handle.join();
}

/// Daemon-side repeat profiling: `"repeat": n` on `analyze` merges `n`
/// replayed launches, matches the local repeat path byte for byte, and
/// caches separately from the single-launch request.
#[test]
fn analyze_repeat_merges_replays_daemon_side() {
    let handle = test_server(ephemeral());
    let reference = Session::test();
    let job = AnalysisJob::new("rodinia/hotspot", 0);
    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");

    let single = client.analyze(&job.app, job.variant).expect("single");
    assert!(single.ok);
    let single_body = single.result.unwrap();

    let options = WireOptions { repeat: 3, ..WireOptions::default() };
    let repeated = client.analyze_with(&job.app, job.variant, &options).expect("repeat");
    assert!(repeated.ok, "{:?}", repeated.error);
    assert!(!repeated.cached, "repeat count addresses its own cache entry");
    let repeated_body = repeated.result.unwrap();
    let samples = |b: &Json| b.field("total_samples").unwrap().as_u64().unwrap();
    let cycles = |b: &Json| b.field("cycles").unwrap().as_u64().unwrap();
    assert!(samples(&repeated_body) > samples(&single_body));
    assert_eq!(cycles(&repeated_body), cycles(&single_body), "ground truth unchanged");

    let local = reference
        .run_one_request_repeat(&job, &options.request, 3)
        .expect("local repeat reference");
    let expected = protocol::analyze_body(&local, 1).compact();
    assert_eq!(repeated_body.compact(), expected, "daemon repeat equals local repeat");
    handle.shutdown();
    handle.join();
}

/// A backpressure-rejected `profile_end` says "retry later" — and the
/// retry must actually work: the upload (and its merge) survives the
/// rejection instead of being discarded.
#[test]
fn profile_end_survives_backpressure_rejection() {
    let config = ServerConfig { workers: 1, queue: 1, ..ServerConfig::ephemeral() };
    let handle = test_server(config);
    let addr = handle.local_addr();
    let reference = Session::test();
    let job = AnalysisJob::new("rodinia/hotspot", 0);
    let (_, profile, _) = reference.profile_one(&job).expect("local profiling");
    let doc = Json::parse(&profile.to_json()).unwrap();

    let mut client = ServeClient::connect(addr).expect("connect");
    let id = client.profile_begin(&job.app, job.variant, &WireOptions::default()).unwrap();
    assert!(client.profile_chunk(id, &doc).expect("chunk").ok);

    // Occupy the single worker and fill the single queue slot.
    let occupier = std::thread::spawn(move || {
        let mut c = ServeClient::connect(addr).expect("connect");
        c.request(&Request::Sleep { ms: 1500 }).expect("sleep completes")
    });
    let queued = std::thread::spawn(move || {
        let mut c = ServeClient::connect(addr).expect("connect");
        std::thread::sleep(std::time::Duration::from_millis(200));
        c.request(&Request::Sleep { ms: 10 }).expect("queued sleep completes")
    });
    std::thread::sleep(std::time::Duration::from_millis(600));
    let rejected = client.profile_end(id).expect("round-trip");
    assert!(!rejected.ok, "profile_end hits backpressure");
    assert!(rejected.error.unwrap().contains("queue full"));

    assert!(occupier.join().unwrap().ok);
    assert!(queued.join().unwrap().ok);
    // The upload survived the rejection: retrying finalizes the same
    // merge, byte-identical to a whole-profile submission.
    let done = client.profile_end(id).expect("retry after drain");
    assert!(done.ok, "{:?}", done.error);
    let report = reference.advise_profile(&job, &profile).expect("local advising");
    let expected = protocol::profile_body(&job, &profile, &report, 1).compact();
    assert_eq!(done.result.unwrap().compact(), expected);
    handle.shutdown();
    handle.join();
}

#[test]
fn full_queue_rejects_with_backpressure_error() {
    // One worker, queue capacity 1: a long sleep occupies the worker,
    // a second fills the queue, the third must be rejected.
    let config = ServerConfig { workers: 1, queue: 1, ..ServerConfig::ephemeral() };
    let handle = test_server(config);
    let addr = handle.local_addr();

    let occupier = std::thread::spawn(move || {
        let mut c = ServeClient::connect(addr).expect("connect");
        c.request(&Request::Sleep { ms: 1500 }).expect("sleep completes")
    });
    let queued = std::thread::spawn(move || {
        let mut c = ServeClient::connect(addr).expect("connect");
        std::thread::sleep(std::time::Duration::from_millis(200));
        c.request(&Request::Sleep { ms: 10 }).expect("queued sleep completes")
    });
    // Give the first request time to reach the worker and the second to
    // park in the queue.
    std::thread::sleep(std::time::Duration::from_millis(600));
    let mut c = ServeClient::connect(addr).expect("connect");
    let rejected = c.request(&Request::Sleep { ms: 10 }).expect("round-trip");
    assert!(!rejected.ok, "third request must be rejected");
    let msg = rejected.error.expect("error message");
    assert!(msg.contains("queue full"), "explicit backpressure: {msg}");

    let status = c.status().expect("status").into_result().expect("ok");
    let queue = status.field("queue").unwrap();
    assert!(queue.field("rejected").unwrap().as_u64().unwrap() >= 1);
    assert_eq!(queue.field("capacity").unwrap().as_u64().unwrap(), 1);

    assert!(occupier.join().unwrap().ok);
    assert!(queued.join().unwrap().ok);
    handle.shutdown();
    handle.join();
}

#[test]
fn protocol_errors_are_reported_not_fatal() {
    let handle = test_server(ephemeral());
    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");
    for (line, needle) in [
        ("this is not json", "malformed request"),
        ("{\"op\":\"warp-speed\"}", "unknown op"),
        ("{\"no_op\":true}", "missing `op`"),
    ] {
        let frame = client.request_line(line).expect("server answers bad input");
        let doc = Json::parse(frame).expect("error frame is JSON");
        assert!(!doc.field("ok").unwrap().as_bool().unwrap());
        let msg = doc.field("error").unwrap().as_str().unwrap();
        assert!(msg.contains(needle), "{line}: {msg}");
    }
    // The connection survives protocol errors; real work still flows.
    let ok = client.analyze("rodinia/hotspot", 0).expect("connection still usable");
    assert!(ok.ok);

    // Analysis errors carry the job identity.
    let bad = client.analyze("no/such-app", 0).expect("round-trip");
    assert!(!bad.ok);
    assert!(bad.error.unwrap().contains("unknown app"));

    let status = client.status().expect("status").into_result().expect("ok");
    let errors = status.field("errors").unwrap();
    assert_eq!(errors.field("protocol").unwrap().as_u64().unwrap(), 3);
    assert_eq!(errors.field("analysis").unwrap().as_u64().unwrap(), 1);
    handle.shutdown();
    handle.join();
}

#[test]
fn shutdown_op_stops_the_daemon_cleanly() {
    let handle = test_server(ephemeral());
    let addr = handle.local_addr();
    let mut client = ServeClient::connect(addr).expect("connect");
    let response = client.shutdown().expect("shutdown acknowledged");
    assert!(response.ok);
    // join() returning proves the accept loop, workers, and connection
    // threads all exited.
    handle.join();
    // And the port is actually closed.
    std::thread::sleep(std::time::Duration::from_millis(50));
    assert!(ServeClient::connect(addr).is_err(), "daemon no longer listening after clean shutdown");
}

#[test]
fn lru_eviction_bounds_the_store() {
    let config = ServerConfig { workers: 2, store_capacity: 2, ..ServerConfig::ephemeral() };
    let handle = test_server(config);
    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");
    for app in ["rodinia/hotspot", "rodinia/gaussian", "rodinia/nw", "rodinia/bfs"] {
        assert!(client.analyze(app, 0).expect("analyze").ok);
    }
    let status = client.status().expect("status").into_result().expect("ok");
    let store = status.field("store").unwrap();
    assert_eq!(store.field("entries").unwrap().as_u64().unwrap(), 2, "memory stays bounded");
    assert!(store.field("evictions").unwrap().as_u64().unwrap() >= 2);
    handle.shutdown();
    handle.join();
}

#[test]
fn persisted_store_warms_a_restarted_daemon() {
    let dir = std::env::temp_dir().join(format!("gpa-serve-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config =
        || ServerConfig { workers: 2, persist_dir: Some(dir.clone()), ..ServerConfig::ephemeral() };

    let first = test_server(config());
    let mut client = ServeClient::connect(first.local_addr()).expect("connect");
    let original = client.analyze("rodinia/hotspot", 0).expect("analyze");
    assert!(original.ok && !original.cached);
    let original_body = original.result.unwrap().compact();
    first.shutdown();
    first.join();

    // A fresh daemon over the same directory answers from disk without
    // re-simulating.
    let second = test_server(config());
    let mut client = ServeClient::connect(second.local_addr()).expect("connect");
    let warmed = client.analyze("rodinia/hotspot", 0).expect("analyze");
    assert!(warmed.ok && warmed.cached, "restart served from the disk tier");
    assert_eq!(warmed.result.unwrap().compact(), original_body);
    let status = client.status().expect("status").into_result().expect("ok");
    assert!(status.field("store").unwrap().field("disk_hits").unwrap().as_u64().unwrap() >= 1);
    second.shutdown();
    second.join();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Reactor engine
// ---------------------------------------------------------------------

/// The wire line for a default-options `analyze` of `(app, 0)`.
fn analyze_wire(app: &str) -> String {
    Request::Analyze { job: AnalysisJob::new(app, 0), options: WireOptions::default() }.to_wire()
}

/// The content address of a default-options `analyze` of `(app, 0)` —
/// what the daemon's store and the cluster ring hash.
fn analyze_key(app: &str) -> String {
    Request::Analyze { job: AnalysisJob::new(app, 0), options: WireOptions::default() }
        .cache_key()
        .expect("analyze is cacheable")
}

/// The reactor must frame requests by newline, not by read boundary: a
/// frame trickling in over several writes parses once complete, and
/// several frames arriving in one write all answer, in order.
#[test]
fn reactor_reassembles_partial_frames_and_pipelines_in_order() {
    let handle = test_server(ephemeral());
    let reference = Session::test();
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // One frame, three writes, pauses in between.
    let frame = "{\"op\":\"status\"}\n";
    for piece in [&frame[..5], &frame[5..11], &frame[11..]] {
        stream.write_all(piece.as_bytes()).expect("partial write");
        std::thread::sleep(Duration::from_millis(40));
    }
    let mut line = String::new();
    reader.read_line(&mut line).expect("response to the reassembled frame");
    let doc = Json::parse(&line).expect("frame JSON");
    assert!(doc.field("ok").unwrap().as_bool().unwrap(), "partial-frame status answered");

    // Three frames, one write: responses come back in request order.
    let pipelined = format!(
        "{}\n{}\n{}\n",
        analyze_wire("rodinia/hotspot"),
        analyze_wire("rodinia/nw"),
        "{\"op\":\"status\"}"
    );
    stream.write_all(pipelined.as_bytes()).expect("pipelined write");
    let mut bodies = Vec::new();
    for _ in 0..3 {
        let mut line = String::new();
        reader.read_line(&mut line).expect("pipelined response");
        bodies.push(Json::parse(&line).expect("frame JSON"));
    }
    for (idx, app) in ["rodinia/hotspot", "rodinia/nw"].iter().enumerate() {
        let job = AnalysisJob::new(*app, 0);
        assert_eq!(
            bodies[idx].field("result").unwrap().compact(),
            reference_body(&reference, &job),
            "pipelined response {idx} is {app}'s bytes, in order"
        );
    }
    assert!(bodies[2].field("result").unwrap().get("uptime_ms").is_some(), "status came last");
    handle.shutdown();
    handle.join();
}

/// The pending-byte budget is admission control, not buffering: with the
/// budget at zero, a job frame pipelined behind unflushed responses is
/// shed with an explicit error, and the shed is counted.
#[test]
fn pending_byte_budget_sheds_jobs_with_backpressure() {
    let config = ServerConfig { max_pending_bytes: 0, ..ephemeral() };
    let handle = test_server(config);
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // One small write, so every frame lands in the reactor's buffer in
    // one batch: the statuses queue response bytes, and the sleep job
    // behind them must be shed before it reaches the worker pool.
    let sleep_wire = Request::Sleep { ms: 10 }.to_wire();
    let burst = format!("{0}\n{0}\n{0}\n{1}\n", "{\"op\":\"status\"}", sleep_wire);
    stream.write_all(burst.as_bytes()).expect("burst write");
    let mut frames = Vec::new();
    for _ in 0..4 {
        let mut line = String::new();
        reader.read_line(&mut line).expect("burst response");
        frames.push(Json::parse(&line).expect("frame JSON"));
    }
    for frame in &frames[..3] {
        assert!(frame.field("ok").unwrap().as_bool().unwrap(), "statuses answered normally");
    }
    assert!(!frames[3].field("ok").unwrap().as_bool().unwrap(), "job behind the backlog shed");
    let msg = frames[3].field("error").unwrap().as_str().unwrap();
    assert!(msg.contains("backlog over budget"), "shed names the budget: {msg}");

    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");
    let status = client.status().expect("status").into_result().expect("ok");
    let reactor = status.field("reactor").unwrap();
    assert!(reactor.field("byte_sheds").unwrap().as_u64().unwrap() >= 1, "shed counted");
    handle.shutdown();
    handle.join();
}

/// The slow-client guard: a connection that goes quiet past the idle
/// deadline is reaped by the reactor's sweep (observed as EOF) and
/// counted in the metrics.
#[test]
fn idle_connections_are_reaped_and_counted() {
    let config = ServerConfig { idle_timeout: Duration::from_millis(150), ..ephemeral() };
    let handle = test_server(config);
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    let mut buf = [0u8; 16];
    // The daemon closes us: read returns 0 well before our own 5s guard.
    let n = stream.read(&mut buf).expect("daemon closed the idle connection");
    assert_eq!(n, 0, "idle connection saw EOF");

    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");
    let status = client.status().expect("status").into_result().expect("ok");
    let reactor = status.field("reactor").unwrap();
    assert!(reactor.field("idle_reaped").unwrap().as_u64().unwrap() >= 1, "reap counted");
    assert_eq!(status.field("engine").unwrap().as_str().unwrap(), "reactor");
    handle.shutdown();
    handle.join();
}

/// The client's read timeout keeps a wedged (or just slow) daemon from
/// hanging `gpa request` forever.
#[test]
fn client_read_timeout_bounds_a_slow_daemon() {
    let handle = test_server(ephemeral());
    let mut slow = ServeClient::connect(handle.local_addr()).expect("connect");
    slow.set_timeouts(Some(Duration::from_millis(150))).expect("timeouts");
    let err = slow.request(&Request::Sleep { ms: 1500 }).expect_err("read must time out");
    assert!(
        matches!(err.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut),
        "timeout, not a hang: {err}"
    );
    // The daemon itself is healthy; a fresh client still gets answers.
    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");
    assert!(client.analyze("rodinia/hotspot", 0).expect("analyze").ok);
    handle.shutdown();
    handle.join();
}

/// The legacy thread-per-connection engine stays wire-compatible (it is
/// the bench baseline): same bytes, same cache behavior, clean shutdown.
#[test]
fn threads_engine_remains_byte_compatible() {
    let config = ServerConfig { engine: ServerEngine::Threads, ..ephemeral() };
    let handle = test_server(config);
    let reference = Session::test();
    let mut client = ServeClient::connect(handle.local_addr()).expect("connect");
    for app in ["rodinia/hotspot", "rodinia/gaussian"] {
        let job = AnalysisJob::new(app, 0);
        let r = client.analyze(app, 0).expect("analyze");
        assert!(r.ok, "{:?}", r.error);
        assert_eq!(r.result.unwrap().compact(), reference_body(&reference, &job));
        let again = client.analyze(app, 0).expect("repeat");
        assert!(again.cached, "store works under the threads engine");
    }
    let status = client.status().expect("status").into_result().expect("ok");
    assert_eq!(status.field("engine").unwrap().as_str().unwrap(), "threads");
    handle.shutdown();
    handle.join();
}

// ---------------------------------------------------------------------
// Cluster mode
// ---------------------------------------------------------------------

/// Binds `n` loopback listeners first (learning every ephemeral port),
/// then starts one daemon per listener with the full peer roster — the
/// same bootstrap the CI smoke uses with fixed ports.
fn test_cluster(n: usize) -> (Vec<gpa::serve::ServerHandle>, Vec<String>) {
    let listeners: Vec<TcpListener> =
        (0..n).map(|_| TcpListener::bind("127.0.0.1:0").expect("bind shard")).collect();
    let addrs: Vec<String> =
        listeners.iter().map(|l| l.local_addr().expect("addr").to_string()).collect();
    let handles = listeners
        .into_iter()
        .enumerate()
        .map(|(i, listener)| {
            let peers =
                addrs.iter().enumerate().filter(|&(j, _)| j != i).map(|(_, a)| a.clone()).collect();
            let config = ServerConfig { workers: 2, peers, ..ServerConfig::ephemeral() };
            serve_on(Arc::new(Session::test()), listener, config).expect("shard starts")
        })
        .collect();
    (handles, addrs)
}

/// Polls a shard's local store for `key` (replication is asynchronous).
fn wait_for_replica(addr: &str, key: &str, deadline: Duration) -> Option<String> {
    let start = std::time::Instant::now();
    let mut client = ServeClient::connect(addr).ok()?;
    while start.elapsed() < deadline {
        let r =
            client.request(&Request::StoreGet { key: key.to_string() }).ok()?.into_result().ok()?;
        if r.field("found").unwrap().as_bool().unwrap() {
            return Some(r.field("body").unwrap().compact());
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    None
}

/// The cluster correctness anchor: whichever shard a client asks, over
/// all 21 apps, the bytes equal single-node `run_one` — computed,
/// forwarded, cached and replicated alike — and the second wave is
/// answered from the sharded store.
#[test]
fn three_shard_cluster_answers_byte_identically_from_any_shard() {
    let (handles, addrs) = test_cluster(3);
    let ring = Ring::new(addrs.iter().cloned());
    let reference = Session::test();
    let jobs = reference.jobs_for_all_apps();
    let expected: Vec<String> = jobs.iter().map(|j| reference_body(&reference, j)).collect();

    // Wave 1 through shard 0: every response byte-identical, none
    // cached (fresh cluster), and the keys shard 0 does not own were
    // forwarded.
    let mut client0 = ServeClient::connect(addrs[0].as_str()).expect("connect shard 0");
    for (job, want) in jobs.iter().zip(&expected) {
        let r = client0.analyze(&job.app, job.variant).expect("wave 1");
        assert!(r.ok, "{}: {:?}", job, r.error);
        assert!(!r.cached, "{job}: first ask computes");
        assert_eq!(&r.result.unwrap().compact(), want, "{job}: wave 1 bytes");
    }
    let status0 = client0.status().expect("status").into_result().expect("ok");
    let cluster0 = status0.field("cluster").unwrap();
    assert!(
        cluster0.field("forwards_out").unwrap().as_u64().unwrap() > 0,
        "shard 0 forwarded the keys it does not own"
    );
    assert_eq!(
        cluster0.field("members").unwrap().as_array().unwrap().len(),
        3,
        "all shards agree on the roster"
    );

    // Waves 2 and 3 through the other shards: byte-identical AND all
    // answered from the sharded store (every key's owner computed it in
    // wave 1).
    for addr in &addrs[1..] {
        let mut client = ServeClient::connect(addr.as_str()).expect("connect shard");
        for (job, want) in jobs.iter().zip(&expected) {
            let r = client.analyze(&job.app, job.variant).expect("later wave");
            assert!(r.ok, "{}: {:?}", job, r.error);
            assert!(r.cached, "{job}: the cluster already holds this report");
            assert_eq!(&r.result.unwrap().compact(), want, "{job}: later-wave bytes");
        }
    }

    // Replication: an owned key's bytes appear, verbatim, in the
    // owner's ring successor's local store.
    let probe = &jobs[0];
    let key = analyze_key(&probe.app);
    let owner = ring.owner(&key).to_string();
    let successor = ring.successor(&owner).expect("3-member ring").to_string();
    let replica = wait_for_replica(&successor, &key, Duration::from_secs(5))
        .expect("replica reaches the successor");
    assert_eq!(replica, expected[0], "replicated bytes identical");

    for handle in handles {
        handle.shutdown();
        handle.join();
    }
}

/// A restarted shard warms owned keys from its ring successor instead
/// of recomputing: the replica flows back over `store_get` and the
/// response stays byte-identical.
#[test]
fn restarted_shard_warms_from_its_neighbor() {
    let (mut handles, addrs) = test_cluster(2);
    let ring = Ring::new(addrs.iter().cloned());
    let reference = Session::test();

    // Pick an app owned by shard 0 (over 21 apps one always is).
    let (job, key) = reference
        .jobs_for_all_apps()
        .into_iter()
        .map(|j| {
            let key = analyze_key(&j.app);
            (j, key)
        })
        .find(|(_, key)| ring.owner(key) == addrs[0])
        .expect("some app hashes to shard 0");
    let expected = reference_body(&reference, &job);

    let mut client = ServeClient::connect(addrs[0].as_str()).expect("connect shard 0");
    let first = client.analyze(&job.app, job.variant).expect("compute on the owner");
    assert!(first.ok && !first.cached);
    assert_eq!(first.result.unwrap().compact(), expected);

    // Wait until the replica lands on shard 1 (shard 0's successor in a
    // 2-member ring), then kill shard 0 — memory store and all.
    assert!(
        wait_for_replica(&addrs[1], &key, Duration::from_secs(5)).is_some(),
        "replica reached the neighbor before the restart"
    );
    let shard0 = handles.remove(0);
    shard0.shutdown();
    shard0.join();

    // Restart shard 0 on the same address with a cold store.
    let listener = (0..50)
        .find_map(|_| {
            TcpListener::bind(addrs[0].as_str()).ok().or_else(|| {
                std::thread::sleep(Duration::from_millis(100));
                None
            })
        })
        .expect("rebind the shard's address");
    let config =
        ServerConfig { workers: 2, peers: vec![addrs[1].clone()], ..ServerConfig::ephemeral() };
    let restarted = serve_on(Arc::new(Session::test()), listener, config).expect("shard restarts");

    // The first ask after the restart is answered from the neighbor's
    // replica — cached, byte-identical, and counted as a warm hit.
    let mut client = ServeClient::connect(addrs[0].as_str()).expect("reconnect shard 0");
    let warmed = client.analyze(&job.app, job.variant).expect("analyze after restart");
    assert!(warmed.ok, "{:?}", warmed.error);
    assert!(warmed.cached, "warmed from the neighbor, not recomputed");
    assert_eq!(warmed.result.unwrap().compact(), expected, "warmed bytes identical");
    let status = client.status().expect("status").into_result().expect("ok");
    let cluster = status.field("cluster").unwrap();
    assert!(cluster.field("peer_warm_hits").unwrap().as_u64().unwrap() >= 1);

    restarted.shutdown();
    restarted.join();
    for handle in handles {
        handle.shutdown();
        handle.join();
    }
}
