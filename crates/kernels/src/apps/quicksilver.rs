//! `Quicksilver` — `CycleTrackingKernel`.
//!
//! Two Table 3 rows (the paper's §7.2):
//!
//! 1. **Function Inlining** (1.12× / est 1.18×): the tracking loop calls
//!    small device functions (`cross_section`, `distance_to_facet`) on
//!    every iteration; `always_inline` fails for size reasons, so the
//!    paper inlines them by hand.
//! 2. **Register Reuse** (1.03× / est 1.04×): local-memory stalls reveal
//!    register spills in the loop; splitting the loop lets each half keep
//!    its temporaries in registers.

use crate::data::ParamBlock;
use crate::dsl::Asm;
use crate::{App, KernelSpec, Params, Stage};
use gpa_arch::LaunchConfig;

/// Builds the Quicksilver app entry.
pub fn app() -> App {
    App {
        name: "Quicksilver",
        kernel: "CycleTrackingKernel",
        stages: vec![
            Stage { name: "Function Inlining", optimizer: "GPUFunctionInliningOptimizer" },
            Stage { name: "Register Reuse", optimizer: "GPURegisterReuseOptimizer" },
        ],
        build,
    }
}

const SEGMENTS: u32 = 12;

/// cross_section body: R40 → R41.
fn cross_section_body(a: &mut Asm) {
    a.i("FMUL R42, R40, 0.33 {S:4}");
    a.i("FFMA R43, R42, R42, 0.11 {S:4}");
    a.i("MUFU.RCP R44, R43 {W:B4, S:1}");
    a.i("FMUL R41, R44, 0.97 {WT:[B4], S:4}");
}

/// distance_to_facet body: R45 → R46.
fn distance_to_facet_body(a: &mut Asm) {
    a.i("FFMA R47, R45, 0.81, 0.02 {S:4}");
    a.i("MUFU.RSQ R48, R47 {W:B4, S:1}");
    a.i("FMUL R46, R48, R45 {WT:[B4], S:4}");
    a.i("FADD R46, R46, 0.001 {S:4}");
}

fn build(variant: usize, p: &Params) -> KernelSpec {
    let inlined = variant >= 1;
    let despilled = variant >= 2;
    let mut a = Asm::module("quicksilver");
    a.kernel("CycleTrackingKernel");
    a.line("CycleTracking.cc", 88);
    a.global_tid();
    a.param_u64(4, 0); // particle energies
    a.addr(6, 4, 0, 2);
    a.i("LDG.E.32 R40, [R6:R7] {W:B0, S:1}");
    a.i("MOV R45, R40 {WT:[B0], S:2}");
    a.i("MOV32I R22, 0 {S:1}"); // tally
    a.i("MOV32I R17, 0 {S:1}");

    let seg_head = |a: &mut Asm, inlined: bool| {
        a.line("CycleTracking.cc", 95);
        if inlined {
            a.inline_push("cross_section", "CycleTracking.cc", 95);
            cross_section_body(a);
            a.inline_pop();
            a.inline_push("distance_to_facet", "CycleTracking.cc", 96);
            distance_to_facet_body(a);
            a.inline_pop();
        } else {
            // Calling convention: marshal arguments and results through
            // the ABI registers — all of it melts away when inlined.
            a.i("MOV R60, R40 {S:2}");
            a.i("MOV R61, R45 {S:2}");
            a.i("MOV R40, R60 {S:2}");
            a.i("CAL cross_section {S:5}");
            a.i("MOV R62, R41 {S:2}");
            a.i("MOV R41, R62 {S:2}");
            a.i("MOV R45, R61 {S:2}");
            a.i("CAL distance_to_facet {S:5}");
            a.i("MOV R63, R46 {S:2}");
            a.i("MOV R46, R63 {S:2}");
        }
    };

    if despilled {
        // Split loop: each half's temporaries stay in registers.
        a.label("seg_loop_a");
        seg_head(&mut a, inlined);
        a.i("FFMA R22, R41, R46, R22 {S:4}");
        a.i("FFMA R40, R40, 0.93, 0.01 {S:4}");
        a.i("IADD R17, R17, 1 {S:4}");
        a.i(format!("ISETP.LT.AND P1, R17, {SEGMENTS} {{S:2}}"));
        a.i("@P1 BRA seg_loop_a {S:5}");
        a.i("MOV32I R17, 0 {S:1}");
        a.label("seg_loop_b");
        a.i("FFMA R45, R45, 0.88, 0.02 {S:4}");
        a.i("FFMA R50, R45, 1.07, R22 {S:4}");
        a.i("FFMA R51, R50, 0.95, 0.03 {S:4}");
        a.i("FFMA R22, R51, 0.5, R22 {S:4}");
        a.i("IADD R17, R17, 1 {S:4}");
        a.i(format!("ISETP.LT.AND P2, R17, {SEGMENTS} {{S:2}}"));
        a.i("@P2 BRA seg_loop_b {S:5}");
    } else {
        // One loop with too many live temporaries: three values spill to
        // local memory at the top and reload near the bottom.
        a.label("seg_loop");
        seg_head(&mut a, inlined);
        a.i("STL.32 [RZ+0x0], R41 {R:B2, S:2}");
        a.i("STL.32 [RZ+0x4], R46 {R:B2, S:2}");
        a.i("STL.32 [RZ+0x8], R40 {R:B2, S:2}");
        a.i("FFMA R45, R45, 0.88, 0.02 {S:4}");
        a.i("FFMA R50, R45, 1.07, 0.0 {S:4}");
        a.i("FFMA R51, R50, 0.95, 0.03 {S:4}");
        a.i("LDL.32 R52, [RZ+0x0] {W:B3, S:1}");
        a.i("LDL.32 R53, [RZ+0x4] {W:B4, S:1}");
        a.i("FFMA R22, R52, R53, R22 {WT:[B3,B4], S:4}");
        a.i("LDL.32 R40, [RZ+0x8] {W:B3, S:1}");
        a.i("FFMA R40, R40, 0.93, 0.01 {WT:[B3], S:4}");
        a.i("FFMA R22, R51, 0.5, R22 {S:4}");
        a.i("IADD R17, R17, 1 {S:4}");
        a.i(format!("ISETP.LT.AND P1, R17, {SEGMENTS} {{S:2}}"));
        a.i("@P1 BRA seg_loop {S:5}");
    }
    a.param_u64(28, 8);
    a.addr(34, 28, 0, 2);
    a.i("STG.E.32 [R34:R35], R22 {R:B5, S:2}");
    a.i("EXIT {WT:[B5], S:1}");
    a.endfunc();
    if !inlined {
        a.func("cross_section");
        a.line("MC_Cross_Section.hh", 12);
        cross_section_body(&mut a);
        a.i("RET {S:5}");
        a.endfunc();
        a.func("distance_to_facet");
        a.line("MC_Facet_Geometry.hh", 33);
        distance_to_facet_body(&mut a);
        a.i("RET {S:5}");
        a.endfunc();
    }
    let module = a.build();

    let blocks = p.sms * p.scale;
    let threads: u32 = 128;
    let n = blocks * threads;
    KernelSpec {
        module,
        entry: "CycleTrackingKernel".into(),
        launch: LaunchConfig::new(blocks, threads),
        setup: Box::new(move |gpu| {
            let mut rng = crate::data::rng(0x5057_0014);
            let energies = gpu.global_mut().alloc(4 * n as u64);
            gpu.global_mut()
                .write_bytes(energies, &crate::data::f32_bytes(&mut rng, n as usize, 0.5, 5.0));
            let out = gpu.global_mut().alloc(4 * n as u64);
            let mut pb = ParamBlock::new();
            pb.push_u64(energies);
            pb.push_u64(out);
            pb.finish()
        }),
        const_bank1: None,
    }
}
