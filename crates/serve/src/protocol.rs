//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! Every frame is one line of compact JSON (strings escape control
//! characters, so a frame never contains a raw newline). Requests carry
//! an `"op"` discriminator; responses carry `"ok"` plus either a
//! `"result"` payload or an `"error"` message. The full schema lives in
//! `docs/protocol.md`.

use gpa_core::{report, AdviceReport};
use gpa_json::Json;
use gpa_pipeline::{AnalysisError, AnalysisJob, AnalysisOutcome};
use gpa_sampling::KernelProfile;

/// The default daemon address (`gpa serve` / `gpa request` without
/// `--addr`).
pub const DEFAULT_ADDR: &str = "127.0.0.1:7070";

/// Hard cap on one request line. Anything longer is rejected and the
/// connection closed: past this point the stream cannot be resynced.
pub const MAX_REQUEST_BYTES: u64 = 8 * 1024 * 1024;

/// Upper bound on the diagnostic `sleep` op, so a stray request cannot
/// park a worker indefinitely.
pub const MAX_SLEEP_MS: u64 = 5_000;

/// How many advice items the rendered report text includes (the CLI's
/// `analyze` default).
pub const REPORT_TOP: usize = 5;

/// A parsed client request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Profile `(app, variant)` in the simulator and advise on it.
    Analyze {
        /// The app/variant to analyze.
        job: AnalysisJob,
    },
    /// Advise on a client-submitted profile (no simulation): the
    /// decoupled path a real CUPTI dump would take.
    AnalyzeProfile {
        /// The app/variant whose module artifacts to match against.
        job: AnalysisJob,
        /// The submitted sampling profile.
        profile: Box<KernelProfile>,
        /// Canonical (compact) rendering of the submitted profile,
        /// kept for content-addressing.
        canon: String,
    },
    /// Daemon metrics snapshot.
    Status,
    /// Stop accepting work and exit cleanly.
    Shutdown,
    /// Diagnostic: occupy a worker for `ms` milliseconds (used by the
    /// backpressure tests and the throughput bench).
    Sleep {
        /// Sleep duration in milliseconds (capped at [`MAX_SLEEP_MS`]).
        ms: u64,
    },
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// A human-readable message on malformed JSON, a missing/unknown
    /// `op`, or invalid op arguments.
    pub fn parse(line: &str) -> Result<Request, String> {
        let doc = Json::parse(line).map_err(|e| format!("malformed request: {e}"))?;
        let op = doc
            .get("op")
            .ok_or("missing `op` field")?
            .as_str()
            .map_err(|_| "`op` must be a string")?;
        match op {
            "analyze" => Ok(Request::Analyze { job: job_from(&doc)? }),
            "analyze_profile" => {
                let profile_doc = doc.get("profile").ok_or("missing `profile` field")?;
                let profile = KernelProfile::from_doc(profile_doc)
                    .map_err(|e| format!("bad `profile`: {e}"))?;
                Ok(Request::AnalyzeProfile {
                    job: job_from(&doc)?,
                    profile: Box::new(profile),
                    canon: profile_doc.compact(),
                })
            }
            "status" => Ok(Request::Status),
            "shutdown" => Ok(Request::Shutdown),
            "sleep" => {
                let ms = match doc.get("ms") {
                    Some(v) => v.as_u64().map_err(|_| "`ms` must be an unsigned integer")?,
                    None => 0,
                };
                Ok(Request::Sleep { ms: ms.min(MAX_SLEEP_MS) })
            }
            other => Err(format!("unknown op `{other}`")),
        }
    }

    /// The op name (for metrics and logs).
    pub fn op(&self) -> &'static str {
        match self {
            Request::Analyze { .. } => "analyze",
            Request::AnalyzeProfile { .. } => "analyze_profile",
            Request::Status => "status",
            Request::Shutdown => "shutdown",
            Request::Sleep { .. } => "sleep",
        }
    }

    /// The content-address of a cacheable request: a canonical string
    /// covering everything that determines the response body. `None`
    /// for ops whose responses must not be cached.
    pub fn cache_key(&self) -> Option<String> {
        match self {
            Request::Analyze { job } => Some(format!("analyze\0{}\0{}", job.app, job.variant)),
            Request::AnalyzeProfile { job, canon, .. } => {
                Some(format!("analyze_profile\0{}\0{}\0{canon}", job.app, job.variant))
            }
            Request::Status | Request::Shutdown | Request::Sleep { .. } => None,
        }
    }

    /// Renders the request as its wire frame (without the trailing
    /// newline). Used by clients; servers only parse.
    pub fn to_wire(&self) -> String {
        match self {
            Request::Analyze { job } => Json::object()
                .with("op", "analyze")
                .with("app", job.app.clone())
                .with("variant", job.variant)
                .compact(),
            Request::AnalyzeProfile { job, canon, .. } => {
                analyze_profile_frame(&job.app, job.variant, canon)
            }
            Request::Status => "{\"op\":\"status\"}".to_string(),
            Request::Shutdown => "{\"op\":\"shutdown\"}".to_string(),
            Request::Sleep { ms } => format!("{{\"op\":\"sleep\",\"ms\":{ms}}}"),
        }
    }
}

/// The `analyze_profile` request frame for a canonically (compact)
/// rendered profile document — the one place its wire layout lives.
pub fn analyze_profile_frame(app: &str, variant: usize, profile_canon: &str) -> String {
    format!(
        "{{\"op\":\"analyze_profile\",\"app\":{},\"variant\":{variant},\"profile\":{profile_canon}}}",
        Json::from(app).compact()
    )
}

fn job_from(doc: &Json) -> Result<AnalysisJob, String> {
    let app = doc
        .get("app")
        .ok_or("missing `app` field")?
        .as_str()
        .map_err(|_| "`app` must be a string")?;
    let variant = match doc.get("variant") {
        Some(v) => {
            usize::try_from(v.as_u64().map_err(|_| "`variant` must be an unsigned integer")?)
                .map_err(|_| "`variant` out of range")?
        }
        None => 0,
    };
    Ok(AnalysisJob::new(app, variant))
}

/// Wraps a stored/computed body into a success frame. `body` must be
/// compact JSON; it is spliced verbatim so cached responses stay
/// byte-identical to freshly computed ones.
pub fn ok_frame(cached: bool, body: &str) -> String {
    format!("{{\"ok\":true,\"cached\":{cached},\"result\":{body}}}")
}

/// An error frame.
pub fn error_frame(message: &str) -> String {
    Json::object().with("ok", false).with("error", message).compact()
}

/// An error frame for a failed analysis, carrying the job identity like
/// [`AnalysisError::to_json`] does.
pub fn job_error_frame(err: &AnalysisError) -> String {
    Json::object()
        .with("ok", false)
        .with("app", err.job.app.clone())
        .with("variant", err.job.variant)
        .with("error", err.message.clone())
        .compact()
}

/// The deterministic `analyze` result body: identity, counters, ranked
/// advice, and the rendered report text. Deliberately excludes
/// wall-clock time so the body is byte-identical run to run (and hence
/// cacheable by content address).
pub fn analyze_body(outcome: &AnalysisOutcome) -> Json {
    result_body(&outcome.job, &outcome.kernel, &outcome.profile, &outcome.report)
}

/// The `analyze_profile` result body (same shape as [`analyze_body`]).
pub fn profile_body(job: &AnalysisJob, profile: &KernelProfile, report: &AdviceReport) -> Json {
    result_body(job, &profile.kernel, profile, report)
}

fn result_body(
    job: &AnalysisJob,
    kernel: &str,
    profile: &KernelProfile,
    advice: &AdviceReport,
) -> Json {
    let items: Vec<Json> = advice
        .items
        .iter()
        .enumerate()
        .map(|(rank, item)| {
            Json::object()
                .with("rank", rank + 1)
                .with("optimizer", item.optimizer.clone())
                .with("estimated_speedup", item.estimated_speedup)
                .with("matched_ratio", item.matched_ratio)
        })
        .collect();
    Json::object()
        .with("app", job.app.clone())
        .with("variant", job.variant)
        .with("kernel", kernel.to_string())
        .with("cycles", profile.cycles)
        .with("total_samples", profile.total_samples)
        .with("issue_ratio", profile.issue_ratio())
        .with("advice", Json::Arr(items))
        .with("text", report::render(advice, REPORT_TOP))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_ops() {
        let r = Request::parse(r#"{"op":"analyze","app":"rodinia/nw","variant":1}"#).unwrap();
        match r {
            Request::Analyze { job } => assert_eq!(job, AnalysisJob::new("rodinia/nw", 1)),
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(matches!(Request::parse(r#"{"op":"status"}"#), Ok(Request::Status)));
        assert!(matches!(Request::parse(r#"{"op":"shutdown"}"#), Ok(Request::Shutdown)));
        assert!(matches!(
            Request::parse(r#"{"op":"sleep","ms":99999}"#),
            Ok(Request::Sleep { ms: MAX_SLEEP_MS })
        ));
    }

    #[test]
    fn variant_defaults_to_baseline() {
        let r = Request::parse(r#"{"op":"analyze","app":"rodinia/nw"}"#).unwrap();
        match r {
            Request::Analyze { job } => assert_eq!(job.variant, 0),
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_requests_with_context() {
        for (line, needle) in [
            ("not json", "malformed request"),
            ("{}", "missing `op`"),
            (r#"{"op":"frobnicate"}"#, "unknown op"),
            (r#"{"op":"analyze"}"#, "missing `app`"),
            (r#"{"op":"analyze","app":7}"#, "`app` must be a string"),
            (r#"{"op":"analyze_profile","app":"x"}"#, "missing `profile`"),
            (r#"{"op":"analyze_profile","app":"x","profile":{}}"#, "bad `profile`"),
        ] {
            let err = Request::parse(line).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn cache_keys_separate_ops_and_variants() {
        let a = Request::parse(r#"{"op":"analyze","app":"a","variant":0}"#).unwrap();
        let b = Request::parse(r#"{"op":"analyze","app":"a","variant":1}"#).unwrap();
        assert_ne!(a.cache_key(), b.cache_key());
        assert!(Request::Status.cache_key().is_none());
        assert!(Request::Sleep { ms: 1 }.cache_key().is_none());
    }

    #[test]
    fn frames_are_single_line_json() {
        let ok = ok_frame(true, "{\"x\":1}");
        let doc = Json::parse(&ok).unwrap();
        assert!(doc.field("ok").unwrap().as_bool().unwrap());
        assert!(doc.field("cached").unwrap().as_bool().unwrap());
        assert_eq!(doc.field("result").unwrap().field("x").unwrap().as_u64().unwrap(), 1);
        let err = error_frame("bad\nthing");
        assert!(!err.contains('\n'), "frames must be newline-free");
        assert!(Json::parse(&err).is_ok());
    }
}
