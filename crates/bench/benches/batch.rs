//! Benches the pipeline's batch path: the 21-app sweep through
//! `run_batch` (rayon fan-out) against the serial reference. On a
//! multi-core host the parallel path should win by roughly the worker
//! count; on a single-core host the two are equivalent.

use criterion::{criterion_group, criterion_main, Criterion};
use gpa_pipeline::Session;

fn bench_batch_paths(c: &mut Criterion) {
    let session = Session::test();
    let jobs = session.jobs_for_all_apps();
    // Warm the artifact cache so both paths measure run time, not
    // module building.
    for job in &jobs {
        session.artifacts(job).expect("registry app builds");
    }
    println!("pipeline batch: {} jobs, {} workers", jobs.len(), session.workers());
    c.bench_function("pipeline/serial_21_apps", |b| b.iter(|| session.run_batch_serial(&jobs)));
    c.bench_function("pipeline/parallel_21_apps", |b| b.iter(|| session.run_batch(&jobs)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_batch_paths
}
criterion_main!(benches);
