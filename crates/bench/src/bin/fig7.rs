//! Reproduces **Figure 7**: single-dependency coverage before and after
//! pruning cold edges, per Rodinia benchmark.

use gpa_core::blamer::single_dependency_coverage;
use gpa_kernels::apps;
use gpa_pipeline::{AnalysisJob, Session};
use rayon::prelude::*;

fn main() {
    let session = Session::full();
    println!("Figure 7 — single dependency coverage before/after pruning\n");
    println!("{:<26} {:>8} {:>8} {:>7}", "benchmark", "before", "after", "nodes");
    println!("{}", "-".repeat(55));
    let apps = apps::rodinia_apps();
    let blames: Vec<_> =
        apps.par_iter().map(|app| session.blame_one(&AnalysisJob::new(app.name, 0))).collect();
    let mut sum_after = 0.0;
    let mut n = 0;
    for (app, blame) in apps.iter().zip(blames) {
        let blame = match blame {
            Ok(b) => b,
            Err(e) => {
                println!("{:<26} error: {e}", app.name);
                continue;
            }
        };
        let cov = single_dependency_coverage(&blame);
        println!(
            "{:<26} {:>8.2} {:>8.2} {:>7}",
            app.name.trim_start_matches("rodinia/"),
            cov.before,
            cov.after,
            cov.nodes
        );
        sum_after += cov.after;
        n += 1;
    }
    println!("{}", "-".repeat(55));
    println!(
        "mean after-pruning coverage: {:.2} (paper: most benchmarks > 0.8)",
        sum_after / n as f64
    );
}
