//! Cross-crate integration tests: profile → blame → advise pipelines with
//! known ground truth.

use gpa::arch::{ArchConfig, LatencyTable, LaunchConfig};
use gpa::core::blamer::single_dependency_coverage;
use gpa::core::{report, Advisor, DetailedReason, ModuleBlame, OptimizerId};
use gpa::kernels::runner::{arch_for, run_spec, time_spec};
use gpa::kernels::{apps, Params};
use gpa::sampling::{Profiler, StallReason};
use gpa::sim::{GpuSim, SimConfig};
use gpa::structure::ProgramStructure;

fn small_profiler(sms: u32) -> Profiler {
    let cfg = SimConfig { sampling_period: 61, ..SimConfig::default() };
    Profiler::new(GpuSim::new(ArchConfig::small(sms), cfg))
}

#[test]
fn memory_dependency_blamed_to_the_load() {
    // A kernel with one global load feeding one consumer: blame must land
    // on the LDG, classified as a global-memory dependency.
    let module = gpa::isa::parse_module(
        r#"
.module t
.kernel k
  S2R R0, SR_TID.X {W:B0, S:1}
  MOV R2, c[0][0] {S:1}
  MOV R3, c[0][4] {S:1}
  SHL R1, R0, 2 {WT:[B0], S:2}
  IADD R2:R3, R2:R3, R1 {S:2}
  MOV32I R6, 0 {S:1}
loop:
  LDG.E.32 R4, [R2:R3] {W:B1, S:1}
  IADD R5, R5, R4 {WT:[B1], S:4}
  IADD R2:R3, R2:R3, 256 {S:2}
  IADD R6, R6, 1 {S:4}
  ISETP.LT.AND P0, R6, 32 {S:2}
  @P0 BRA loop {S:5}
  STG.E.32 [R2:R3], R5 {R:B2, S:1}
  EXIT {WT:[B2], S:1}
.endfunc
"#,
    )
    .unwrap();
    let mut prof = small_profiler(1);
    let buf = prof.gpu_mut().global_mut().alloc(4 * 64 * 256);
    let params: Vec<u8> = buf.to_le_bytes().to_vec();
    let (profile, _) = prof.profile(&module, "k", &LaunchConfig::new(1, 64), &params).unwrap();
    assert!(profile.stall_histogram()[StallReason::MemoryDependency.code() as usize] > 0);

    let arch = ArchConfig::small(1);
    let structure = ProgramStructure::build(&module);
    let blame = ModuleBlame::build(&module, &structure, &profile, &LatencyTable::for_arch(&arch));
    let totals = blame.totals_by_detail();
    let global = totals.get(&DetailedReason::GlobalMem).map_or(0.0, |t| t.0);
    assert!(global > 0.0, "global-memory blame found: {totals:?}");
    // The LDG (index 6) must be the blamed def for the IADD (index 7).
    let edge =
        blame.edges().find(|(_, e)| e.detail == DetailedReason::GlobalMem).expect("a global edge");
    assert_eq!(edge.1.def, 6);
    assert_eq!(edge.1.use_, 7);
    assert_eq!(edge.1.distance, 1, "adjacent def and use");

    // Coverage: every stalled node has a single source here.
    let cov = single_dependency_coverage(&blame);
    assert!(cov.after >= cov.before);
    assert!(cov.after > 0.9, "single-source kernel: {cov:?}");
}

#[test]
fn advisor_ranks_the_right_optimizer_for_hotspot() {
    let p = Params::test();
    let arch = arch_for(&p);
    let app = apps::hotspot::app();
    let spec = (app.build)(0, &p);
    let run = run_spec(&spec, &arch).unwrap();
    let advice = Advisor::new().advise(&spec.module, &run.profile, &arch);
    let rank = advice.rank_of(OptimizerId::StrengthReduction);
    assert!(rank.is_some_and(|r| r <= 5), "strength reduction in top 5, got {rank:?}");
    let item = advice.item(OptimizerId::StrengthReduction).unwrap();
    assert!(item.estimated_speedup > 1.0);
    assert!(item.estimated_speedup <= 2.0, "stall elimination bounded here");
    assert!(!item.hotspots.is_empty(), "hotspots reported");
    // The rendered report names the optimizer and the source file.
    let text = report::render(&advice, 5);
    assert!(text.contains("GPUStrengthReductionOptimizer"));
    assert!(text.contains("hotspot.cu"));
}

#[test]
fn thread_increase_suggested_and_real_for_gaussian() {
    let p = Params::test();
    let arch = arch_for(&p);
    let app = apps::gaussian::app();
    let base = (app.build)(0, &p);
    let run = run_spec(&base, &arch).unwrap();
    let advice = Advisor::new().advise(&base.module, &run.profile, &arch);
    let item = advice.item(OptimizerId::ThreadIncrease).expect("matches tiny blocks");
    assert!(item.estimated_speedup > 1.2, "got {}", item.estimated_speedup);
    let opt = (app.build)(1, &p);
    let opt_cycles = time_spec(&opt, &arch).unwrap();
    let achieved = run.cycles as f64 / opt_cycles as f64;
    assert!(achieved > 1.2, "bigger blocks actually help: {achieved:.2}");
}

#[test]
fn warp_balance_matches_sync_stalls() {
    let p = Params::test();
    let arch = arch_for(&p);
    let app = apps::nw::app();
    let spec = (app.build)(0, &p);
    let run = run_spec(&spec, &arch).unwrap();
    let hist = run.profile.stall_histogram();
    assert!(
        hist[StallReason::Synchronization.code() as usize] > 0,
        "the serial wavefront stalls at barriers"
    );
    let advice = Advisor::new().advise(&spec.module, &run.profile, &arch);
    let rank = advice.rank_of(OptimizerId::WarpBalance);
    assert!(rank.is_some_and(|r| r <= 3), "warp balance ranks high: {rank:?}");
}

#[test]
fn profiles_round_trip_through_disk() {
    let p = Params::test();
    let arch = arch_for(&p);
    let spec = (apps::kmeans::app().build)(0, &p);
    let run = run_spec(&spec, &arch).unwrap();
    let dir = std::env::temp_dir().join("gpa_test_profile.json");
    run.profile.save(&dir).unwrap();
    let loaded = gpa::sampling::KernelProfile::load(&dir).unwrap();
    assert_eq!(loaded, run.profile);
    std::fs::remove_file(&dir).ok();
}

#[test]
fn table3_smoke_subset() {
    // A fast subset of the Table 3 pipeline: baseline slower than (or
    // equal to) optimized, and the expected optimizer matched.
    let p = Params::test();
    let arch = arch_for(&p);
    for app in [apps::cfd::app(), apps::quicksilver::app()] {
        for (k, stage) in app.stages.iter().enumerate() {
            let base = (app.build)(k, &p);
            let opt = (app.build)(k + 1, &p);
            let run = run_spec(&base, &arch).unwrap();
            let opt_cycles = time_spec(&opt, &arch).unwrap();
            let achieved = run.cycles as f64 / opt_cycles as f64;
            assert!(achieved > 0.9, "{} stage {k} must not regress badly: {achieved:.2}", app.name);
            let advice = Advisor::new().advise(&base.module, &run.profile, &arch);
            assert!(
                advice.rank_of_named(stage.optimizer).is_some(),
                "{} stage {k}: {} should match",
                app.name,
                stage.optimizer
            );
        }
    }
}
