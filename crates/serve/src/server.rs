//! The daemon: a nonblocking reactor (default) or the legacy
//! thread-per-connection loop, over one bounded worker pool and one
//! shared [`Session`] — optionally sharded across peers by consistent
//! hashing.
//!
//! ## Engines
//!
//! * [`ServerEngine::Reactor`] — one thread drives *every* connection
//!   through an epoll readiness loop (`reactor.rs`): each socket is a
//!   small state machine (read-accumulate → parse frame → enqueue job →
//!   write-drain), so thousands of idle connections cost zero threads
//!   and no stack. Workers hand completed frames back through a
//!   completion list plus an eventfd waker.
//! * [`ServerEngine::Threads`] — the original model (one reader thread
//!   per connection, blocking dispatch), kept as the bench baseline and
//!   a fallback.
//!
//! Both engines share the protocol logic (`handle_line`), the worker
//! pool, the content-addressed [`ReportStore`], and the admission rules.
//!
//! ## Admission control
//!
//! Work is *rejected*, never silently buffered: a bounded job queue
//! (the existing backpressure frame), a daemon-wide pending-response
//! byte budget (reactor; shed with an error frame before parsing more),
//! and a per-connection write-buffer gate that stops reading from a
//! client that does not drain its responses. Idle connections past the
//! deadline are reaped by the reactor tick (and by read timeouts in the
//! threads engine) and counted in metrics.
//!
//! ## Cluster mode
//!
//! With `--peers` (or `--join`), every daemon keeps an epoch-versioned
//! [`Roster`] of members and derives the consistent-hash [`Ring`] from
//! it. `analyze`/`analyze_profile` requests whose content address
//! hashes to another member are forwarded there (marked `fwd`, stamped
//! with the sender's epoch) and the owner's response frame is relayed
//! **verbatim** — computed, cached, forwarded and replicated responses
//! are byte-identical. Owners replicate computed bodies to their ring
//! successor (`store_put`), and a restarted shard warms owned keys
//! from that successor (`store_get`) before recomputing.
//!
//! Membership is live: `join` adds a shard (the seed answers with the
//! bumped roster and every member catches up lazily — a forward whose
//! epoch is stale earns a [`stale_epoch_frame`] instead of a
//! wrong-owner answer, and a sender that is *ahead* triggers a
//! `ring_status` refresh), `leave` drains one (its entries are shipped
//! to their new owners before the roster shrinks). After any epoch
//! bump a background handoff pass re-ships entries the new ring maps
//! elsewhere. Every peer call rides the hardened path in `peer.rs`:
//! pooled connections, a circuit breaker per peer, a shared retry
//! budget, and deterministic fault injection (`GPA_FAULTS`).
//!
//! [`stale_epoch_frame`]: protocol::stale_epoch_frame
//!
//! Shutdown (the `shutdown` op, or [`ServerHandle::shutdown`]) is
//! cooperative: the flag flips, workers drain the queue, the reactor
//! flushes pending responses (bounded drain), and every thread joins.

use crate::faults::FaultPlan;
use crate::metrics::{Metrics, ReactorStats};
use crate::peer::PeerTable;
use crate::protocol::{self, PeerMeta, Request, WireOptions, DEFAULT_ADDR, MAX_REQUEST_BYTES};
use crate::reactor::{Event, Interest, Poller, Waker};
use crate::ring::{Ring, Roster};
use crate::store::ReportStore;
use gpa_json::Json;
use gpa_pipeline::{AnalysisJob, Session};
use gpa_sampling::KernelProfile;
use std::collections::{HashMap, VecDeque};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which connection-handling engine the daemon runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServerEngine {
    /// Nonblocking epoll reactor: one thread, per-connection state
    /// machines. The default.
    #[default]
    Reactor,
    /// Thread-per-connection with blocking dispatch: the pre-reactor
    /// model, kept as a fallback and as the bench baseline.
    Threads,
}

impl ServerEngine {
    /// The engine's name as reported by `status`.
    pub fn name(self) -> &'static str {
        match self {
            ServerEngine::Reactor => "reactor",
            ServerEngine::Threads => "threads",
        }
    }
}

/// Hard cap on reactor threads: accept-path fan-out saturates long
/// before the worker pool does, and each reactor costs a thread, an
/// epoll instance and an eventfd.
pub const MAX_REACTORS: usize = 8;

/// Daemon configuration (CLI flags map onto this 1:1).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks an ephemeral port.
    pub addr: String,
    /// Worker-pool width.
    pub workers: usize,
    /// Reactor-thread count for the reactor engine. `0` (the default)
    /// picks `available_parallelism`; either way the effective count is
    /// clamped to `1..=`[`MAX_REACTORS`]. `1` reproduces the
    /// single-reactor engine exactly — byte- and behavior-identical.
    pub reactors: usize,
    /// Bounded request-queue capacity (backpressure threshold).
    pub queue: usize,
    /// In-memory report-store capacity (entries, LRU-evicted).
    pub store_capacity: usize,
    /// Optional on-disk report persistence directory.
    pub persist_dir: Option<PathBuf>,
    /// Connection engine.
    pub engine: ServerEngine,
    /// Peer shard addresses (cluster mode when nonempty). The ring is
    /// built over `peers ∪ {advertise}`, sorted and deduplicated, so
    /// every shard handed the same roster agrees on ownership.
    pub peers: Vec<String>,
    /// The address *peers* reach this daemon at (defaults to the bound
    /// address, which is right whenever the bind address is routable).
    pub advertise: Option<String>,
    /// A running member to `join` at startup: the daemon announces
    /// itself there, adopts the answered roster, and enters the ring
    /// without any shard restarting. Implies cluster mode.
    pub join: Option<String>,
    /// Deterministic peer-path fault plan (chaos tests). `None` falls
    /// back to the `GPA_FAULTS` environment variable.
    pub faults: Option<FaultPlan>,
    /// Retry-budget capacity: the token bucket shared by every
    /// budgeted peer retry (forwards).
    pub peer_retry_budget: u32,
    /// How long a tripped peer breaker stays open before one call
    /// probes it half-open.
    pub peer_trip_cooldown: Duration,
    /// Idle deadline: connections with no traffic for this long are
    /// reaped (slow-client guard).
    pub idle_timeout: Duration,
    /// Daemon-wide budget on buffered-but-unwritten response bytes;
    /// past it, new jobs are shed with a backpressure frame.
    pub max_pending_bytes: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: DEFAULT_ADDR.to_string(),
            workers: std::thread::available_parallelism().map_or(2, |n| n.get()),
            reactors: 0,
            queue: 64,
            store_capacity: 128,
            persist_dir: None,
            engine: ServerEngine::Reactor,
            peers: Vec::new(),
            advertise: None,
            join: None,
            faults: None,
            peer_retry_budget: 16,
            peer_trip_cooldown: Duration::from_secs(2),
            idle_timeout: Duration::from_secs(60),
            max_pending_bytes: 64 * 1024 * 1024,
        }
    }
}

impl ServerConfig {
    /// A loopback config on an ephemeral port (tests, benches).
    pub fn ephemeral() -> Self {
        ServerConfig { addr: "127.0.0.1:0".to_string(), ..ServerConfig::default() }
    }

    /// The reactor-thread count this config actually runs: `0` resolves
    /// to `available_parallelism`, and everything is clamped to
    /// `1..=`[`MAX_REACTORS`]. Always `0` under the threads engine,
    /// which has no reactors.
    pub fn effective_reactors(&self) -> usize {
        match self.engine {
            ServerEngine::Threads => 0,
            ServerEngine::Reactor => {
                let requested = if self.reactors == 0 {
                    std::thread::available_parallelism().map_or(1, |n| n.get())
                } else {
                    self.reactors
                };
                requested.clamp(1, MAX_REACTORS)
            }
        }
    }
}

/// How accepted sockets reach their reactor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AcceptPath {
    /// Every reactor owns its own `SO_REUSEPORT` listener on the shared
    /// port; the kernel load-balances connections across the group. The
    /// default whenever the daemon binds its own sockets and the
    /// platform takes the option.
    Reuseport,
    /// One listener, owned by reactor 0, which accepts everything and
    /// round-robins the sockets to the other reactors through their
    /// wakers. The fallback for externally-bound listeners
    /// ([`serve_on`]) and reuseport-less platforms; with one reactor it
    /// is exactly the pre-multi-reactor engine.
    RoundRobin,
    /// Threads engine: no reactors at all.
    None,
}

impl AcceptPath {
    fn name(self) -> &'static str {
        match self {
            AcceptPath::Reuseport => "reuseport",
            AcceptPath::RoundRobin => "round_robin",
            AcceptPath::None => "none",
        }
    }
}

/// Where a worker's finished frame goes.
enum ReplyTo {
    /// Blocking dispatch (threads engine): the connection thread is
    /// parked on the receiver.
    Channel(mpsc::Sender<String>),
    /// Reactor dispatch: push onto the owning reactor's completion
    /// list and wake it.
    Reactor {
        /// The reactor that owns the connection.
        reactor: usize,
        /// The connection's token within that reactor.
        token: u64,
    },
}

/// One queued analysis request and where its frame goes back.
struct Work {
    request: Request,
    reply: ReplyTo,
}

/// Open chunked uploads are scoped to one connection: abandoned uploads
/// die with the socket instead of leaking daemon-global state, and ids
/// never collide across clients.
const MAX_UPLOADS_PER_CONNECTION: usize = 8;

/// Hard cap on chunks per upload. Each accepted chunk can add up to one
/// frame's worth of PC entries to the retained merge, so without a cap
/// a client could grow daemon memory one 8 MiB frame at a time.
const MAX_CHUNKS_PER_UPLOAD: u64 = 64;

/// Hard cap on distinct PCs in an upload's running merge — the actual
/// retained-memory bound (chunks with disjoint PC keys accumulate).
/// Far above any real program's instruction count.
const MAX_UPLOAD_PCS: usize = 1 << 18;

/// Daemon-global cap on PC entries retained across *all* open uploads
/// on *all* connections — the per-upload/per-connection caps bound one
/// client, this bounds the fleet (a swarm of connections each parking
/// maximal uploads would otherwise grow daemon memory without limit).
const MAX_TOTAL_UPLOAD_PCS: usize = 1 << 21;

/// Per-connection unwritten-response gate: past this, the reactor stops
/// *reading* from the connection until the client drains what it owes
/// (level-triggered interest modulation, not a disconnect).
const WRITE_GATE_BYTES: usize = 4 * 1024 * 1024;

/// Reactor poll tick: the idle sweep and shutdown checks run at least
/// this often even with no socket events.
const TICK_MS: i32 = 50;

/// Per-reactor recycle pool: at most this many connection buffers are
/// kept for reuse, so a burst of ten thousand connections does not pin
/// ten thousand buffers forever.
const POOL_MAX_BUFFERS: usize = 64;

/// Buffers grown past this capacity are dropped instead of pooled — a
/// single 8 MiB upload must not turn the pool into a permanent 8 MiB
/// hoard per slot.
const POOL_MAX_BUF_CAPACITY: usize = 256 * 1024;

/// How long the reactor keeps flushing in-flight responses after
/// shutdown triggers before force-closing (covers a worker finishing
/// the job whose client asked for the frame).
const DRAIN_DEADLINE: Duration = Duration::from_secs(6);

/// Bounded queue between the store's insert hook and the replicator
/// thread; when full, replications drop (and are counted) rather than
/// stall an analysis worker.
const REPLICATION_QUEUE: usize = 256;

/// Connect/read/write timeout for shard-to-shard traffic — shorter than
/// the client default so a dead peer costs one bounded stall, after
/// which the request falls back to local computation.
const PEER_IO_TIMEOUT: Duration = Duration::from_secs(5);

/// Bounded queue of background cluster chores (roster refreshes,
/// handoff passes); when full, a chore is dropped — the periodic
/// anti-entropy tick will get there eventually.
const CLUSTER_TASKS: usize = 32;

/// How often the cluster chore thread wakes with no work queued, to
/// probe tripped peers (half-open breaker checks double as roster
/// anti-entropy).
const CLUSTER_TICK: Duration = Duration::from_millis(250);

/// How often the chore thread heartbeats *healthy* roster members (a
/// `ring_status` exchange, so liveness checks double as anti-entropy).
/// A dead peer fails [`TRIP_THRESHOLD`](crate::peer) consecutive
/// heartbeats and trips its breaker in a few seconds — before the
/// first user call has to eat the failure.
const HEARTBEAT_INTERVAL: Duration = Duration::from_millis(1000);

/// A forward that comes back `stale_epoch` re-routes on the adopted
/// roster; this bounds how many times one request will chase the ring
/// before computing locally (each hop means *we* were behind, which a
/// healthy cluster resolves in one adoption).
const MAX_FORWARD_HOPS: u32 = 3;

/// One open chunked upload: the target job, the advice options fixed at
/// `profile_begin`, and the running merge (never the individual
/// chunks).
struct Upload {
    job: AnalysisJob,
    options: WireOptions,
    merged: Option<KernelProfile>,
    chunks: u64,
}

/// Per-connection request state (chunked uploads in flight).
#[derive(Default)]
struct ConnState {
    uploads: HashMap<u64, Upload>,
    next_upload_id: u64,
}

/// Whether the connection keeps reading after a response.
enum Control {
    Continue,
    Shutdown,
}

/// The bookkeeping a dispatched `profile_end` carries: enough to
/// restore the upload on a backpressure rejection, or to release its
/// budget share once the worker answers.
struct UploadTicket {
    upload_id: u64,
    chunks: u64,
    retained_pcs: u64,
}

/// A request that needs a worker, plus its upload ticket if it was
/// synthesized by `profile_end`.
struct Pending {
    request: Request,
    ticket: Option<UploadTicket>,
}

/// What [`handle_line`] decided: answer now, or hand to the worker
/// pool (engine-specific — the threads engine blocks, the reactor
/// parks the connection). The variants differ in size by the whole
/// `Request`, but the value lives on the stack for one call only —
/// boxing it would buy nothing but an allocation per dispatched job.
#[allow(clippy::large_enum_variant)]
enum Handled {
    Reply(String, Control),
    Dispatch(Pending),
}

/// The roster and everything derived from it, swapped atomically under
/// one lock so no reader ever sees an epoch paired with another
/// epoch's ring.
struct ClusterState {
    roster: Roster,
    ring: Ring,
    /// This shard's replication target (`None` off the ring or in a
    /// 1-member ring).
    successor: Option<String>,
}

impl ClusterState {
    fn new(roster: Roster, self_addr: &str) -> ClusterState {
        let ring = roster.ring();
        let successor = ring.successor(self_addr).map(str::to_string);
        ClusterState { roster, ring, successor }
    }
}

/// Background cluster chores, run off the request path.
enum ClusterTask {
    /// Pull `ring_status` from this member and adopt anything newer.
    Refresh(String),
    /// Re-ship store entries the current ring maps to another owner.
    Handoff,
}

/// Shard-cluster state: the live roster/ring, this daemon's identity
/// on it, and the hardened peer path.
struct Cluster {
    self_addr: String,
    state: RwLock<ClusterState>,
    /// Pooled + breaker-guarded + budgeted peer connections.
    peers: PeerTable,
    /// Sender side of the replication queue; `None` once shutdown has
    /// begun (dropping it lets the replicator thread exit).
    repl_tx: Mutex<Option<mpsc::SyncSender<(String, String)>>>,
    /// Sender side of the chore queue; `None` once shutdown has begun.
    task_tx: Mutex<Option<mpsc::SyncSender<ClusterTask>>>,
    /// Set for good by a self-`leave`: the daemon keeps serving (and
    /// forwarding) but is no longer a ring member and re-joins nothing.
    draining: AtomicBool,
}

impl Cluster {
    fn epoch(&self) -> u64 {
        self.state.read().expect("cluster state").roster.epoch()
    }

    fn members(&self) -> Vec<String> {
        self.state.read().expect("cluster state").roster.members().to_vec()
    }

    fn successor(&self) -> Option<String> {
        self.state.read().expect("cluster state").successor.clone()
    }

    /// Whether the current ring maps `key` to this shard.
    fn owns(&self, key: &str) -> bool {
        let state = self.state.read().expect("cluster state");
        !state.ring.is_empty() && state.ring.owner(key) == self.self_addr
    }

    /// The anti-entropy stamp this shard puts on peer frames.
    fn meta(&self) -> PeerMeta {
        PeerMeta { epoch: Some(self.epoch()), from: Some(self.self_addr.clone()) }
    }

    /// Applies a roster mutation; on change, rebuilds the derived ring
    /// and successor under the same lock. Returns whether anything
    /// changed.
    fn mutate(&self, f: impl FnOnce(&mut Roster) -> bool) -> bool {
        let mut state = self.state.write().expect("cluster state");
        let changed = f(&mut state.roster);
        if changed {
            state.ring = state.roster.ring();
            state.successor = state.ring.successor(&self.self_addr).map(str::to_string);
        }
        changed
    }

    /// Adopts a peer's roster snapshot (newer epochs win), then puts
    /// this shard back on the roster if the snapshot dropped it — a
    /// member that is not draining never gossips itself out of the
    /// ring.
    fn adopt(&self, epoch: u64, members: &[String]) -> bool {
        let draining = self.draining.load(Ordering::Acquire);
        self.mutate(|roster| {
            let mut changed = roster.adopt(epoch, members);
            if !draining && !roster.contains(&self.self_addr) {
                changed |= roster.join(&self.self_addr);
            }
            changed
        })
    }

    /// Queues a background chore (best-effort: a full queue drops it,
    /// and the periodic tick catches up).
    fn schedule(&self, task: ClusterTask) {
        if let Some(tx) = self.task_tx.lock().expect("task tx").as_ref() {
            let _ = tx.try_send(task);
        }
    }
}

/// One reactor thread's cross-thread surface: the handles workers (and
/// the round-robin acceptor) use to reach it. Everything thread-local
/// to the reactor — poller, connection table, buffer pool — lives on
/// its stack in [`reactor_loop`].
struct ReactorShared {
    /// Wakes the reactor out of `epoll_wait` (completions, handed-off
    /// sockets, shutdown).
    waker: Waker,
    /// Worker → reactor finished frames, drained every loop turn.
    completions: Mutex<Vec<(u64, String)>>,
    /// Sockets accepted elsewhere (round-robin path) waiting for this
    /// reactor to register them.
    incoming: Mutex<Vec<TcpStream>>,
    /// This reactor's counters (the `status.reactors` entry).
    stats: ReactorStats,
    /// This reactor's share of the daemon's pending-byte budget: the
    /// admission gate checks the reactor's *own* backlog against its
    /// own share, so one reactor's slow-client pile-up cannot shed
    /// jobs arriving on the others.
    byte_budget: u64,
}

struct Shared {
    session: Arc<Session>,
    /// Lazily-built twin of `session` running the timed memory
    /// hierarchy ([`gpa_arch::MemModel::Hierarchy`]), serving requests
    /// that negotiate `"mem": "hierarchy"`. Built on first use so
    /// flat-only daemons pay nothing.
    hier_session: OnceLock<Arc<Session>>,
    store: ReportStore,
    metrics: Metrics,
    queue: Mutex<VecDeque<Work>>,
    available: Condvar,
    queue_capacity: usize,
    workers: usize,
    persisted: bool,
    engine: ServerEngine,
    idle_timeout: Duration,
    max_pending_bytes: u64,
    cluster: Option<Cluster>,
    shutting_down: AtomicBool,
    next_conn_id: AtomicU64,
    /// Threads engine only: dup'd sockets for shutdown kicks.
    conns: Mutex<Vec<(u64, TcpStream)>>,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
    local_addr: SocketAddr,
    /// The reactor threads' shared surfaces, indexed by reactor id
    /// (empty under the threads engine).
    reactors: Vec<ReactorShared>,
    /// How accepted sockets are distributed across the reactors.
    accept: AcceptPath,
    /// PC entries currently retained by open uploads, daemon-wide
    /// (see [`MAX_TOTAL_UPLOAD_PCS`]). Approximate accounting —
    /// relaxed atomics — is fine for a resource budget.
    upload_pcs: AtomicU64,
}

/// A running daemon: its address and the threads behind it.
///
/// Dropping the handle shuts the daemon down and joins every thread;
/// [`ServerHandle::join`] blocks until something else (normally a
/// client's `shutdown` op) stops it.
pub struct ServerHandle {
    shared: Arc<Shared>,
    /// One thread per reactor (reactor engine) or the single blocking
    /// accept loop (threads engine).
    accept: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    replicator: Option<JoinHandle<()>>,
    cluster_worker: Option<JoinHandle<()>>,
}

/// Binds and starts the daemon.
///
/// # Errors
///
/// When the address cannot be bound or the persist directory cannot be
/// created.
pub fn serve(session: Arc<Session>, config: ServerConfig) -> io::Result<ServerHandle> {
    let n = config.effective_reactors();
    if n > 1 {
        // Multi-reactor default: one SO_REUSEPORT listener per reactor,
        // kernel-balanced. Falls back to the single-listener round-robin
        // path below when the platform refuses the option (or the
        // address itself is unusable — in which case the plain bind
        // reports the real error).
        if let Ok(listeners) = bind_reuseport_group(&config.addr, n) {
            return serve_listeners(session, listeners, AcceptPath::Reuseport, config);
        }
    }
    let listener = TcpListener::bind(&config.addr)?;
    serve_on(session, listener, config)
}

/// Binds `count` `SO_REUSEPORT` listeners on one address (resolving an
/// ephemeral port once, with the first bind).
fn bind_reuseport_group(addr: &str, count: usize) -> io::Result<Vec<TcpListener>> {
    use std::net::ToSocketAddrs;
    let target = addr.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "address resolves to nothing")
    })?;
    let first = crate::reactor::reuseport_listener(target)?;
    let local = first.local_addr()?;
    let mut group = vec![first];
    for _ in 1..count {
        group.push(crate::reactor::reuseport_listener(local)?);
    }
    Ok(group)
}

/// Starts the daemon on an already-bound listener. This is how cluster
/// tests bootstrap: bind every shard first (learning the ephemeral
/// ports), then start each daemon with the full peer roster.
///
/// With more than one reactor configured, the daemon first tries to
/// grow the listener into an `SO_REUSEPORT` group; an externally-bound
/// listener normally lacks the option (it must be set before `bind`),
/// so the attempt fails cleanly and reactor 0 becomes the single
/// acceptor, round-robining sockets to its siblings.
///
/// # Errors
///
/// When the listener is unusable or the persist directory cannot be
/// created.
pub fn serve_on(
    session: Arc<Session>,
    listener: TcpListener,
    config: ServerConfig,
) -> io::Result<ServerHandle> {
    let n = config.effective_reactors();
    if n > 1 {
        if let Ok(local) = listener.local_addr() {
            if local.port() != 0 {
                if let Ok(siblings) = bind_reuseport_group(&local.to_string(), n - 1) {
                    let mut listeners = vec![listener];
                    listeners.extend(siblings);
                    return serve_listeners(session, listeners, AcceptPath::Reuseport, config);
                }
            }
        }
    }
    let path = match config.engine {
        ServerEngine::Reactor => AcceptPath::RoundRobin,
        ServerEngine::Threads => AcceptPath::None,
    };
    serve_listeners(session, vec![listener], path, config)
}

/// The common daemon bring-up: `listeners` is one listener per reactor
/// ([`AcceptPath::Reuseport`]) or exactly one ([`AcceptPath::RoundRobin`]
/// and the threads engine).
fn serve_listeners(
    session: Arc<Session>,
    listeners: Vec<TcpListener>,
    accept_path: AcceptPath,
    config: ServerConfig,
) -> io::Result<ServerHandle> {
    let store = ReportStore::new(config.store_capacity, config.persist_dir.clone())?;
    let local_addr = listeners[0].local_addr()?;
    let workers = config.workers.max(1);
    let n_reactors = config.effective_reactors();
    let mut reactor_shared = Vec::with_capacity(n_reactors);
    for _ in 0..n_reactors {
        reactor_shared.push(ReactorShared {
            waker: Waker::new()?,
            completions: Mutex::new(Vec::new()),
            incoming: Mutex::new(Vec::new()),
            stats: ReactorStats::new(),
            byte_budget: config.max_pending_bytes / n_reactors.max(1) as u64,
        });
    }
    let cluster_mode =
        !config.peers.is_empty() || config.advertise.is_some() || config.join.is_some();
    let (cluster, repl_rx, task_rx) = if cluster_mode {
        let self_addr = config.advertise.clone().unwrap_or_else(|| local_addr.to_string());
        if config.peers.contains(&self_addr) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "--advertise {self_addr} duplicates a peer address; \
                     a shard cannot be its own peer"
                ),
            ));
        }
        if config.join.as_deref() == Some(self_addr.as_str()) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("--join {self_addr} points at this daemon; join an existing member"),
            ));
        }
        let faults = match &config.faults {
            Some(plan) => Some(plan.clone()),
            None => {
                FaultPlan::from_env().map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?
            }
        };
        let roster = Roster::new(config.peers.iter().cloned().chain([self_addr.clone()]));
        let state = ClusterState::new(roster, &self_addr);
        let (repl_tx, repl_rx) = mpsc::sync_channel(REPLICATION_QUEUE);
        let (task_tx, task_rx) = mpsc::sync_channel(CLUSTER_TASKS);
        let cluster = Cluster {
            self_addr,
            state: RwLock::new(state),
            peers: PeerTable::new(
                PEER_IO_TIMEOUT,
                config.peer_trip_cooldown,
                config.peer_retry_budget,
                faults,
            ),
            repl_tx: Mutex::new(Some(repl_tx)),
            task_tx: Mutex::new(Some(task_tx)),
            draining: AtomicBool::new(false),
        };
        (Some(cluster), Some(repl_rx), Some(task_rx))
    } else {
        (None, None, None)
    };
    let shared = Arc::new(Shared {
        session,
        hier_session: OnceLock::new(),
        store,
        metrics: Metrics::new(),
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        queue_capacity: config.queue.max(1),
        workers,
        persisted: config.persist_dir.is_some(),
        engine: config.engine,
        idle_timeout: config.idle_timeout,
        max_pending_bytes: config.max_pending_bytes,
        cluster,
        shutting_down: AtomicBool::new(false),
        next_conn_id: AtomicU64::new(0),
        conns: Mutex::new(Vec::new()),
        conn_threads: Mutex::new(Vec::new()),
        local_addr,
        reactors: reactor_shared,
        accept: accept_path,
        upload_pcs: AtomicU64::new(0),
    });
    if shared.cluster.is_some() {
        // The store's insert hook queues owned computed bodies for the
        // replicator. Weak: the hook lives inside Shared's own store, so
        // a strong Arc here would be a reference cycle.
        let weak = Arc::downgrade(&shared);
        shared.store.set_insert_hook(move |key, body| {
            let Some(shared) = weak.upgrade() else { return };
            let Some(cluster) = &shared.cluster else { return };
            // Replicate only keys this shard owns: a body computed here
            // as a forwarding *fallback* belongs to another shard's
            // replica chain, not ours.
            if !cluster.owns(key) {
                return;
            }
            let tx = cluster.repl_tx.lock().expect("repl tx").clone();
            let Some(tx) = tx else { return };
            if tx.try_send((key.to_string(), body.to_string())).is_ok() {
                shared.metrics.replication_queued.fetch_add(1, Ordering::Relaxed);
            } else {
                shared.metrics.note_replication_drop("replication queue full");
            }
        });
    }
    let replicator = match repl_rx {
        Some(rx) => {
            let sh = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("gpa-serve-replicator".to_string())
                    .spawn(move || replicator_loop(&sh, &rx))?,
            )
        }
        None => None,
    };
    let cluster_worker = match task_rx {
        Some(rx) => {
            let sh = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("gpa-serve-cluster".to_string())
                    .spawn(move || cluster_loop(&sh, &rx))?,
            )
        }
        None => None,
    };
    let worker_handles = (0..workers)
        .map(|i| {
            let sh = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("gpa-serve-worker-{i}"))
                .spawn(move || worker_loop(&sh))
        })
        .collect::<io::Result<Vec<_>>>()?;
    let mut listeners = listeners;
    let accept = match config.engine {
        ServerEngine::Reactor => {
            // Reuseport: every reactor owns listeners[i]. Round-robin:
            // reactor 0 owns the single listener, the rest poll only
            // their waker and adopt handed-off sockets.
            let mut threads = Vec::with_capacity(n_reactors);
            for (idx, listener) in listeners
                .drain(..)
                .map(Some)
                .chain(std::iter::repeat_with(|| None))
                .take(n_reactors)
                .enumerate()
            {
                let sh = Arc::clone(&shared);
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("gpa-serve-reactor-{idx}"))
                        .spawn(move || reactor_loop(&sh, idx, listener))?,
                );
            }
            threads
        }
        ServerEngine::Threads => {
            let listener = listeners.remove(0);
            let sh = Arc::clone(&shared);
            vec![std::thread::Builder::new()
                .name("gpa-serve-accept".to_string())
                .spawn(move || accept_loop(&sh, &listener))?]
        }
    };
    let handle =
        ServerHandle { shared, accept, workers: worker_handles, replicator, cluster_worker };
    if let Some(seed) = &config.join {
        // Announce to the seed and adopt its answer before reporting
        // the daemon up; a failed join tears everything down (the
        // operator pointed us at a dead or misaddressed member).
        join_cluster(&handle.shared, seed)?;
    }
    Ok(handle)
}

/// Announces this daemon to `seed` with a `join` op and adopts the
/// roster the seed answers with.
fn join_cluster(shared: &Shared, seed: &str) -> io::Result<()> {
    let cluster = shared.cluster.as_ref().expect("join implies cluster mode");
    let wire = Request::Join { addr: cluster.self_addr.clone(), meta: cluster.meta() }.to_wire();
    let line = cluster
        .peers
        .call(seed, &shared.metrics, true, |client| {
            Ok(client.request_line(&wire)?.trim_end().to_string())
        })
        .map_err(|e| {
            io::Error::new(io::ErrorKind::ConnectionRefused, format!("join via {seed}: {e}"))
        })?;
    let reply = Json::parse(&line)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("join via {seed}: {e}")))?;
    let bad = |what: &str| {
        io::Error::new(io::ErrorKind::InvalidData, format!("join via {seed}: {what} in {line}"))
    };
    if !reply.get("ok").and_then(|v| v.as_bool().ok()).unwrap_or(false) {
        return Err(bad("not an ok frame"));
    }
    let result = reply.get("result").ok_or_else(|| bad("no result"))?;
    let epoch =
        result.get("epoch").and_then(|v| v.as_u64().ok()).ok_or_else(|| bad("no roster epoch"))?;
    let members: Vec<String> = result
        .get("members")
        .and_then(|v| v.as_array().ok())
        .ok_or_else(|| bad("no member list"))?
        .iter()
        .filter_map(|v| v.as_str().ok().map(str::to_string))
        .collect();
    if cluster.adopt(epoch, &members) {
        shared.metrics.ring_refreshes.fetch_add(1, Ordering::Relaxed);
    } else {
        // The adoption tie-break refused an equal-epoch snapshot; merge
        // member-by-member instead so the rings still converge.
        cluster.mutate(|roster| {
            // Every member must be joined — `any` would short-circuit.
            let mut changed = false;
            for member in &members {
                changed |= roster.join(member);
            }
            changed
        });
    }
    cluster.schedule(ClusterTask::Handoff);
    Ok(())
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Initiates shutdown programmatically (idempotent; equivalent to a
    /// client's `shutdown` op).
    pub fn shutdown(&self) {
        trigger_shutdown(&self.shared);
    }

    /// How many reactor threads this daemon runs (0 under the threads
    /// engine).
    pub fn reactors(&self) -> usize {
        self.shared.reactors.len()
    }

    /// The accept path in effect: `"reuseport"`, `"round_robin"`, or
    /// `"none"` (threads engine).
    pub fn accept_path(&self) -> &'static str {
        self.shared.accept.name()
    }

    /// Blocks until the daemon has fully stopped: the accept loop has
    /// exited, the queue is drained, and every thread is joined.
    pub fn join(mut self) {
        self.join_inner();
    }

    fn join_inner(&mut self) {
        for h in self.accept.drain(..) {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.replicator.take() {
            let _ = h.join();
        }
        if let Some(h) = self.cluster_worker.take() {
            let _ = h.join();
        }
        let conns = std::mem::take(&mut *self.shared.conn_threads.lock().expect("conn threads"));
        for h in conns {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        trigger_shutdown(&self.shared);
        self.join_inner();
    }
}

fn trigger_shutdown(shared: &Shared) {
    if shared.shutting_down.swap(true, Ordering::AcqRel) {
        return;
    }
    // Wake idle workers so they observe the flag (under the lock, so a
    // worker between its empty-check and its wait cannot miss it).
    {
        let _guard = shared.queue.lock().expect("queue lock");
        shared.available.notify_all();
    }
    // Let the replicator and the chore thread drain and exit: dropping
    // the only long-lived senders disconnects their channels.
    if let Some(cluster) = &shared.cluster {
        cluster.repl_tx.lock().expect("repl tx").take();
        cluster.task_tx.lock().expect("task tx").take();
    }
    // Pop every reactor out of epoll_wait.
    for reactor in &shared.reactors {
        reactor.waker.wake();
    }
    // Unblock a threads-engine accept loop.
    let _ = TcpStream::connect(shared.local_addr);
    // Kick threads-engine connections out of their blocking reads.
    // Responses already written are still delivered (FIN follows queued
    // data).
    for (_, conn) in shared.conns.lock().expect("conns lock").drain(..) {
        let _ = conn.shutdown(std::net::Shutdown::Both);
    }
}

// ---------------------------------------------------------------------
// Shared request handling (both engines)
// ---------------------------------------------------------------------

fn handle_line(shared: &Shared, state: &mut ConnState, line: &str) -> Handled {
    let request = match Request::parse(line) {
        Ok(r) => r,
        Err(msg) => {
            shared.metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
            return Handled::Reply(protocol::error_frame(&msg), Control::Continue);
        }
    };
    shared.metrics.count_op(&request);
    let request = match request {
        Request::Status => {
            return Handled::Reply(
                protocol::ok_frame(false, &status_body(shared).compact()),
                Control::Continue,
            )
        }
        Request::Shutdown => {
            return Handled::Reply(
                protocol::ok_frame(false, "{\"shutting_down\":true}"),
                Control::Shutdown,
            )
        }
        // Upload bookkeeping is answered inline; only the finalized
        // merge consumes a worker slot, as a synthesized
        // `analyze_profile` request.
        Request::ProfileBegin { job, options } => {
            return Handled::Reply(upload_begin(shared, state, job, options), Control::Continue)
        }
        Request::ProfileChunk { upload_id, profile } => {
            return Handled::Reply(
                upload_chunk(shared, state, upload_id, profile),
                Control::Continue,
            )
        }
        Request::ProfileAbort { upload_id } => {
            return Handled::Reply(upload_abort(shared, state, upload_id), Control::Continue)
        }
        Request::ProfileEnd { upload_id } => return upload_end(shared, state, upload_id),
        // Peer store ops touch only the *local* store tiers — no
        // forwarding, no computation — so they are answered inline.
        Request::StoreGet { key } => {
            let body = match shared.store.get(&key) {
                // Bodies are compact JSON; splice verbatim so the
                // replica a peer admits equals the owner's bytes.
                Some(body) => format!("{{\"found\":true,\"body\":{body}}}"),
                None => "{\"found\":false}".to_string(),
            };
            return Handled::Reply(protocol::ok_frame(false, &body), Control::Continue);
        }
        Request::StorePut { key, body, meta } => {
            shared.store.insert_replica(&key, &body);
            shared.metrics.replicated_in.fetch_add(1, Ordering::Relaxed);
            apply_peer_meta(shared, &meta);
            return Handled::Reply(
                protocol::ok_frame(false, "{\"stored\":true}"),
                Control::Continue,
            );
        }
        // Membership ops mutate only the roster (cheap, lock-bounded);
        // the handoff they may imply runs on the chore thread.
        Request::RingStatus => {
            return Handled::Reply(ring_status(shared), Control::Continue);
        }
        Request::Join { addr, meta } => {
            return Handled::Reply(peer_join(shared, &addr, &meta), Control::Continue);
        }
        Request::Leave { addr, meta } => {
            // Removing *another* member is a roster edit; draining
            // *this* shard ships the whole store and takes a worker.
            match leave_inline(shared, addr.as_deref(), &meta) {
                Some(frame) => return Handled::Reply(frame, Control::Continue),
                None => {
                    return Handled::Dispatch(Pending {
                        request: Request::Leave { addr, meta },
                        ticket: None,
                    })
                }
            }
        }
        other => other,
    };
    if let Request::Analyze { options, .. } | Request::AnalyzeProfile { options, .. } = &request {
        if options.forwarded {
            shared.metrics.forwards_in.fetch_add(1, Ordering::Relaxed);
            // A forwarded frame from a shard whose roster is behind
            // ours would be answered by the *wrong* owner; bounce it
            // with the current roster instead so the sender catches up
            // and re-routes.
            if let Some(stale) = check_peer_epoch(shared, &options.meta) {
                return Handled::Reply(stale, Control::Continue);
            }
        }
    }
    if let Some(key) = request.cache_key() {
        if let Some(body) = shared.store.get(&key) {
            return Handled::Reply(protocol::ok_frame(true, &body), Control::Continue);
        }
    }
    Handled::Dispatch(Pending { request, ticket: None })
}

// ---------------------------------------------------------------------
// Membership ops and epoch anti-entropy
// ---------------------------------------------------------------------

/// Reacts to the anti-entropy stamp on a peer frame: a sender that is
/// *ahead* of this roster knows members we do not, so schedule a
/// refresh from it. (Behind-sender handling is op-specific; see
/// [`check_peer_epoch`].)
fn apply_peer_meta(shared: &Shared, meta: &PeerMeta) {
    let Some(cluster) = &shared.cluster else { return };
    let Some(sender_epoch) = meta.epoch else { return };
    if sender_epoch > cluster.epoch() {
        if let Some(from) = &meta.from {
            if from != &cluster.self_addr {
                cluster.schedule(ClusterTask::Refresh(from.clone()));
            }
        }
    }
}

/// The stale-epoch gate for forwarded analyze frames: `Some(frame)`
/// when the sender's roster is behind ours and the request must bounce
/// instead of being answered by a non-owner.
fn check_peer_epoch(shared: &Shared, meta: &PeerMeta) -> Option<String> {
    let cluster = shared.cluster.as_ref()?;
    let sender_epoch = meta.epoch?;
    let (local_epoch, members) = {
        let state = cluster.state.read().expect("cluster state");
        (state.roster.epoch(), state.roster.members().to_vec())
    };
    if sender_epoch < local_epoch {
        shared.metrics.stale_epoch_rejected.fetch_add(1, Ordering::Relaxed);
        return Some(protocol::stale_epoch_frame(local_epoch, &members));
    }
    apply_peer_meta(shared, meta);
    None
}

/// The `ring_status` reply: this shard's roster view.
fn ring_status(shared: &Shared) -> String {
    let Some(cluster) = &shared.cluster else {
        return protocol::error_frame("this daemon is not in cluster mode");
    };
    let state = cluster.state.read().expect("cluster state");
    let body = Json::object()
        .with("epoch", state.roster.epoch())
        .with("self", cluster.self_addr.clone())
        .with(
            "members",
            Json::Arr(state.roster.members().iter().map(|m| Json::from(m.as_str())).collect()),
        )
        .with("successor", state.successor.clone().map_or(Json::Null, Json::Str))
        .with("draining", cluster.draining.load(Ordering::Relaxed));
    protocol::ok_frame(false, &body.compact())
}

/// The `join` op: adds `addr` to the roster (bumping the epoch) and
/// answers with the post-join roster so the joiner can adopt it.
fn peer_join(shared: &Shared, addr: &str, meta: &PeerMeta) -> String {
    let Some(cluster) = &shared.cluster else {
        return protocol::error_frame("this daemon is not in cluster mode");
    };
    if !addr.contains(':') {
        return protocol::error_frame("`addr` must be a host:port address");
    }
    apply_peer_meta(shared, meta);
    let added = cluster.mutate(|roster| roster.join(addr));
    if added {
        // Entries the wider ring now maps to the joiner (possibly via
        // other members) get re-shipped in the background.
        cluster.schedule(ClusterTask::Handoff);
    }
    let (epoch, members) = {
        let state = cluster.state.read().expect("cluster state");
        (state.roster.epoch(), state.roster.members().to_vec())
    };
    let body = Json::object()
        .with("added", added)
        .with("epoch", epoch)
        .with("members", Json::Arr(members.iter().map(|m| Json::from(m.as_str())).collect()));
    protocol::ok_frame(false, &body.compact())
}

/// The roster-edit half of `leave`: removing a member that is not this
/// shard is answered inline; `None` means the target is this shard
/// itself (an explicit address or none at all), which drains on a
/// worker thread instead.
fn leave_inline(shared: &Shared, addr: Option<&str>, meta: &PeerMeta) -> Option<String> {
    let Some(cluster) = &shared.cluster else {
        return Some(protocol::error_frame("this daemon is not in cluster mode"));
    };
    let target = addr?;
    if target == cluster.self_addr {
        return None;
    }
    apply_peer_meta(shared, meta);
    let removed = cluster.mutate(|roster| roster.leave(target));
    if removed {
        cluster.schedule(ClusterTask::Handoff);
    }
    let (epoch, members) = {
        let state = cluster.state.read().expect("cluster state");
        (state.roster.epoch(), state.roster.members().to_vec())
    };
    let body = Json::object()
        .with("removed", removed)
        .with("epoch", epoch)
        .with("members", Json::Arr(members.iter().map(|m| Json::from(m.as_str())).collect()));
    Some(protocol::ok_frame(false, &body.compact()))
}

/// Drains this shard out of the ring: leave the roster, ship every
/// stored entry to its new owner, and announce the departure to the
/// remaining members. The daemon keeps serving afterwards — local
/// store, forwarding to the survivors — it just owns nothing.
fn drain_self(shared: &Shared) -> String {
    let Some(cluster) = &shared.cluster else {
        return protocol::error_frame("this daemon is not in cluster mode");
    };
    if cluster.draining.swap(true, Ordering::AcqRel) {
        return protocol::error_frame("this shard is already draining");
    }
    cluster.mutate(|roster| roster.leave(&cluster.self_addr));
    let (epoch, members) = {
        let state = cluster.state.read().expect("cluster state");
        (state.roster.epoch(), state.roster.members().to_vec())
    };
    let mut handed_off = 0u64;
    let mut failed = 0u64;
    if !members.is_empty() {
        let ring = Ring::new(members.iter().cloned());
        for (key, body) in shared.store.entries() {
            if ship_entry(shared, cluster, ring.owner(&key), &key, &body) {
                handed_off += 1;
            } else {
                failed += 1;
            }
        }
    }
    // Best-effort departure announce; a member that misses it learns
    // from the next stale-epoch bounce or refresh.
    let announce =
        Request::Leave { addr: Some(cluster.self_addr.clone()), meta: cluster.meta() }.to_wire();
    for member in &members {
        let _ = cluster.peers.call(member, &shared.metrics, false, |client| {
            client.request_line(&announce).map(drop)
        });
    }
    let body = Json::object()
        .with("left", true)
        .with("epoch", epoch)
        .with("handed_off", handed_off)
        .with("handoff_failed", failed);
    protocol::ok_frame(false, &body.compact())
}

/// Ships one store entry to `owner` over the hardened peer path
/// (best-effort: no retry budget is spent on a handoff).
fn ship_entry(shared: &Shared, cluster: &Cluster, owner: &str, key: &str, body: &str) -> bool {
    let wire =
        Request::StorePut { key: key.to_string(), body: body.to_string(), meta: cluster.meta() }
            .to_wire();
    let sent = cluster
        .peers
        .call(owner, &shared.metrics, false, |client| client.request_line(&wire).map(drop));
    match sent {
        Ok(()) => {
            shared.metrics.handoff_shipped.fetch_add(1, Ordering::Relaxed);
            true
        }
        Err(_) => {
            shared.metrics.handoff_failed.fetch_add(1, Ordering::Relaxed);
            false
        }
    }
}

/// `profile_begin`: opens an upload slot after validating (and warming)
/// the job's module artifacts, so a typo'd app or out-of-range variant
/// fails before the client streams megabytes of chunks.
fn upload_begin(
    shared: &Shared,
    state: &mut ConnState,
    job: AnalysisJob,
    options: WireOptions,
) -> String {
    if state.uploads.len() >= MAX_UPLOADS_PER_CONNECTION {
        return protocol::error_frame(&format!(
            "too many open uploads on this connection (limit {MAX_UPLOADS_PER_CONNECTION}); \
             finish one with profile_end first"
        ));
    }
    if let Err(e) = shared.session.artifacts(&job) {
        return protocol::job_error_frame(&e);
    }
    let id = state.next_upload_id;
    state.next_upload_id += 1;
    state.uploads.insert(id, Upload { job, options, merged: None, chunks: 0 });
    protocol::ok_frame(false, &format!("{{\"upload_id\":{id}}}"))
}

/// `profile_chunk`: folds one chunk into the upload's running merge.
/// Every rejection (chunk-count cap, per-upload or daemon-wide PC
/// budget, merge mismatch) leaves the upload in its previous, usable
/// state.
fn upload_chunk(
    shared: &Shared,
    state: &mut ConnState,
    upload_id: u64,
    profile: Box<KernelProfile>,
) -> String {
    let Some(upload) = state.uploads.get_mut(&upload_id) else {
        return protocol::error_frame(&format!("unknown upload id {upload_id}"));
    };
    if upload.chunks >= MAX_CHUNKS_PER_UPLOAD {
        return protocol::error_frame(&format!(
            "upload {upload_id} already holds {MAX_CHUNKS_PER_UPLOAD} chunks \
             (the limit); send profile_end"
        ));
    }
    // The documented bound is on *distinct* PCs in the running merge,
    // so count only this chunk's genuinely new keys (replay-style
    // chunks overlap heavily).
    let (merged_pcs, new_pcs) = match &upload.merged {
        None => (0, profile.pcs.len()),
        Some(acc) => {
            (acc.pcs.len(), profile.pcs.keys().filter(|pc| !acc.pcs.contains_key(pc)).count())
        }
    };
    if merged_pcs + new_pcs > MAX_UPLOAD_PCS {
        return protocol::error_frame(&format!(
            "upload {upload_id} would exceed {MAX_UPLOAD_PCS} merged PCs"
        ));
    }
    if shared.upload_pcs.load(Ordering::Relaxed) + new_pcs as u64 > MAX_TOTAL_UPLOAD_PCS as u64 {
        return protocol::error_frame(&format!(
            "daemon-wide upload budget of {MAX_TOTAL_UPLOAD_PCS} retained PCs exhausted; \
             retry later"
        ));
    }
    match &mut upload.merged {
        None => upload.merged = Some(*profile),
        Some(acc) => {
            if let Err(e) = acc.merge_in(&profile) {
                return protocol::error_frame(&format!("chunk does not merge: {e}"));
            }
        }
    }
    upload.chunks += 1;
    shared.upload_pcs.fetch_add(new_pcs as u64, Ordering::Relaxed);
    protocol::ok_frame(false, &format!("{{\"received\":{}}}", upload.chunks))
}

/// `profile_abort`: discards an open upload and releases its share of
/// the daemon-wide PC budget.
fn upload_abort(shared: &Shared, state: &mut ConnState, upload_id: u64) -> String {
    match state.uploads.remove(&upload_id) {
        Some(upload) => {
            release_upload_pcs(shared, &upload);
            protocol::ok_frame(false, "{\"aborted\":true}")
        }
        None => protocol::error_frame(&format!("unknown upload id {upload_id}")),
    }
}

/// `profile_end`: finalizes an upload as a synthesized
/// `analyze_profile` of the merged document — same body, same content
/// address, so chunked and whole submissions share one report-store
/// entry. A backpressure rejection restores the upload (the "retry
/// later" advice must be followable); success and cache hits release
/// its budget share.
fn upload_end(shared: &Shared, state: &mut ConnState, upload_id: u64) -> Handled {
    let Some(upload) = state.uploads.remove(&upload_id) else {
        return Handled::Reply(
            protocol::error_frame(&format!("unknown upload id {upload_id}")),
            Control::Continue,
        );
    };
    let Upload { job, options, merged, chunks } = upload;
    let Some(profile) = merged else {
        return Handled::Reply(
            protocol::error_frame(&format!(
                "upload {upload_id} has no chunks; send profile_chunk before profile_end"
            )),
            Control::Continue,
        );
    };
    let retained_pcs = profile.pcs.len() as u64;
    let canon = profile.to_doc().compact();
    let request = Request::AnalyzeProfile { job, profile: Box::new(profile), canon, options };
    if let Some(key) = request.cache_key() {
        if let Some(body) = shared.store.get(&key) {
            shared.upload_pcs.fetch_sub(retained_pcs, Ordering::Relaxed);
            return Handled::Reply(protocol::ok_frame(true, &body), Control::Continue);
        }
    }
    Handled::Dispatch(Pending {
        request,
        ticket: Some(UploadTicket { upload_id, chunks, retained_pcs }),
    })
}

/// Settles a dispatched `profile_end` once a worker answered (any
/// frame, success or analysis error: the upload is consumed).
fn settle_ticket(shared: &Shared, ticket: UploadTicket) {
    shared.upload_pcs.fetch_sub(ticket.retained_pcs, Ordering::Relaxed);
}

/// Re-opens a `profile_end` upload whose dispatch was rejected, so the
/// "retry later" backpressure advice stays followable.
fn restore_upload(state: &mut ConnState, ticket: UploadTicket, request: Request) {
    if let Request::AnalyzeProfile { job, profile, options, .. } = request {
        state.uploads.insert(
            ticket.upload_id,
            Upload { job, options, merged: Some(*profile), chunks: ticket.chunks },
        );
    }
}

/// Returns an upload's retained PCs to the daemon-wide budget.
fn release_upload_pcs(shared: &Shared, upload: &Upload) {
    if let Some(merged) = &upload.merged {
        shared.upload_pcs.fetch_sub(merged.pcs.len() as u64, Ordering::Relaxed);
    }
}

/// Admits a request to the worker queue, or rejects it (shutdown, byte
/// budget, queue capacity) handing the request back with the error
/// frame to send. The rejection is boxed: `Request` is large and the
/// happy path should not pay for its stack space.
fn try_enqueue(
    shared: &Shared,
    request: Request,
    reply: ReplyTo,
) -> Result<(), Box<(Request, String)>> {
    // The byte gate is per reactor: each reactor's own backlog is
    // checked against its own share of the daemon budget, so one
    // reactor's slow-client pile-up cannot shed jobs arriving on the
    // others. With one reactor the share *is* the whole budget and the
    // gauge is the daemon gauge — same check, same frame, as ever. The
    // threads engine has no reactors and keeps the daemon-wide gate.
    let (pending_bytes, budget) = match &reply {
        ReplyTo::Reactor { reactor, .. } => {
            let rs = &shared.reactors[*reactor];
            (rs.stats.pending_bytes.load(Ordering::Relaxed), rs.byte_budget)
        }
        ReplyTo::Channel(_) => {
            (shared.metrics.pending_bytes.load(Ordering::Relaxed), shared.max_pending_bytes)
        }
    };
    if pending_bytes > budget {
        shared.metrics.byte_sheds.fetch_add(1, Ordering::Relaxed);
        if let ReplyTo::Reactor { reactor, .. } = &reply {
            shared.reactors[*reactor].stats.byte_sheds.fetch_add(1, Ordering::Relaxed);
        }
        return Err(Box::new((
            request,
            protocol::error_frame(&format!(
                "response backlog over budget ({pending_bytes} pending bytes, budget {budget}); \
                 retry later"
            )),
        )));
    }
    let mut queue = shared.queue.lock().expect("queue lock");
    if shared.shutting_down.load(Ordering::Acquire) {
        return Err(Box::new((request, protocol::error_frame("server is shutting down"))));
    }
    if queue.len() >= shared.queue_capacity {
        drop(queue);
        shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
        return Err(Box::new((
            request,
            protocol::error_frame(&format!(
                "request queue full ({} pending, capacity {}); retry later",
                shared.queue_capacity, shared.queue_capacity
            )),
        )));
    }
    queue.push_back(Work { request, reply });
    shared.metrics.note_enqueued();
    shared.available.notify_one();
    Ok(())
}

/// The outcome of [`dispatch`]: a reply frame, or a backpressure
/// rejection that hands the request back so stateful callers
/// (`profile_end`) can preserve what it was built from. Same
/// stack-transient story as [`Handled`]: boxing the returned request
/// would cost an allocation on every rejection for no benefit.
#[allow(clippy::large_enum_variant)]
enum Dispatched {
    /// A worker (or the rejection path of a worker-less op) answered.
    Replied(String),
    /// The queue was full or the daemon is shutting down; the request
    /// never entered the queue.
    Rejected {
        /// The request, returned unconsumed.
        request: Request,
        /// The error frame to send.
        frame: String,
    },
}

/// Blocking dispatch (threads engine): pushes onto the bounded queue
/// and waits for the frame.
fn dispatch(shared: &Shared, request: Request) -> Dispatched {
    let (reply, result) = mpsc::channel();
    match try_enqueue(shared, request, ReplyTo::Channel(reply)) {
        Err(rejection) => {
            let (request, frame) = *rejection;
            Dispatched::Rejected { request, frame }
        }
        Ok(()) => Dispatched::Replied(match result.recv() {
            Ok(frame) => frame,
            Err(_) => protocol::error_frame("internal error: worker abandoned the request"),
        }),
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let work = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(work) = queue.pop_front() {
                    shared.metrics.note_dequeued();
                    break Some(work);
                }
                if shared.shutting_down.load(Ordering::Acquire) {
                    break None;
                }
                queue = shared.available.wait(queue).expect("queue lock");
            }
        };
        let Some(work) = work else { break };
        let frame = execute(shared, work.request);
        match work.reply {
            // The connection may already be gone; that only means
            // nobody is waiting for this frame.
            ReplyTo::Channel(tx) => {
                let _ = tx.send(frame);
            }
            ReplyTo::Reactor { reactor, token } => {
                let rs = &shared.reactors[reactor];
                rs.completions.lock().expect("completions").push((token, frame));
                rs.waker.wake();
            }
        }
    }
}

// ---------------------------------------------------------------------
// Execution and cluster routing (worker threads)
// ---------------------------------------------------------------------

/// What one forwarding attempt came back with.
enum Forwarded {
    /// The owner's frame, to be relayed verbatim.
    Frame(String),
    /// The owner said our roster was behind; we adopted its snapshot
    /// and the request should re-route on the new ring.
    StaleEpoch,
}

/// Runs one dequeued request: forwarded to its owning shard in cluster
/// mode, computed locally otherwise (or as the fallback when the owner
/// is unreachable).
fn execute(shared: &Shared, request: Request) -> String {
    for _hop in 0..MAX_FORWARD_HOPS {
        let Some(owner) = route_away(shared, &request) else { break };
        match forward(shared, &owner, &request) {
            Ok(Forwarded::Frame(frame)) => return frame,
            // Our roster was behind; it has been refreshed from the
            // bounce, so re-route (the key may even be ours now).
            Ok(Forwarded::StaleEpoch) => continue,
            Err(_) => {
                shared.metrics.forward_failures.fetch_add(1, Ordering::Relaxed);
                // The owner is unreachable: answer locally. Check the
                // store once more first — the frame may have landed as a
                // replica while we waited on the dead peer.
                if let Some(key) = request.cache_key() {
                    if let Some(body) = shared.store.get(&key) {
                        return protocol::ok_frame(true, &body);
                    }
                }
                break;
            }
        }
    }
    execute_local(shared, request)
}

/// The shard `request` must be relayed to: `Some(owner)` only in
/// cluster mode, for cacheable requests not already forwarded, whose
/// content address hashes to another member.
fn route_away(shared: &Shared, request: &Request) -> Option<String> {
    let cluster = shared.cluster.as_ref()?;
    if request.is_forwarded() {
        return None;
    }
    let key = request.cache_key()?;
    let state = cluster.state.read().expect("cluster state");
    if state.ring.is_empty() {
        return None;
    }
    let owner = state.ring.owner(&key);
    (owner != cluster.self_addr).then(|| owner.to_string())
}

/// Relays `request` to its owner and returns the owner's response frame
/// **verbatim** — the `cached` flag and the body bytes are the owner's,
/// so forwarded responses stay byte-identical to direct ones. The
/// forwarded frame carries this shard's epoch; a `stale_epoch` bounce
/// adopts the owner's roster instead of returning a frame.
fn forward(shared: &Shared, owner: &str, request: &Request) -> Result<Forwarded, io::Error> {
    let cluster = shared.cluster.as_ref().expect("routed with a cluster");
    shared.metrics.forwards_out.fetch_add(1, Ordering::Relaxed);
    let mut forwarded = request.to_forwarded();
    if let Request::Analyze { options, .. } | Request::AnalyzeProfile { options, .. } =
        &mut forwarded
    {
        options.meta = cluster.meta();
    }
    let wire = forwarded.to_wire();
    let line = cluster
        .peers
        .call(owner, &shared.metrics, true, |client| {
            Ok(client.request_line(&wire)?.trim_end().to_string())
        })
        .map_err(crate::client::ClientError::into_io)?;
    if let Some((epoch, members)) = protocol::parse_stale_epoch(&line) {
        if cluster.adopt(epoch, &members) {
            shared.metrics.ring_refreshes.fetch_add(1, Ordering::Relaxed);
            cluster.schedule(ClusterTask::Handoff);
        }
        return Ok(Forwarded::StaleEpoch);
    }
    Ok(Forwarded::Frame(line))
}

/// Fetches an owned-but-missing key from the ring successor (which
/// holds this shard's replicas): how a restarted shard warms from its
/// neighbor instead of recomputing.
fn warm_from_successor(shared: &Shared, key: &str) -> Option<String> {
    let cluster = shared.cluster.as_ref()?;
    let successor = cluster.successor()?;
    if !cluster.owns(key) {
        return None;
    }
    let wire = Request::StoreGet { key: key.to_string() }.to_wire();
    let line = cluster
        .peers
        .call(&successor, &shared.metrics, false, |client| {
            Ok(client.request_line(&wire)?.trim_end().to_string())
        })
        .ok()?;
    let doc = Json::parse(&line).ok()?;
    if !doc.get("ok")?.as_bool().ok()? {
        return None;
    }
    let result = doc.get("result")?;
    if !result.get("found")?.as_bool().ok()? {
        return None;
    }
    // Compact re-rendering round-trips byte-identically (gpa-json's
    // proptests), so the warmed body equals the replica's bytes.
    let body = result.get("body")?.compact();
    shared.metrics.peer_warm_hits.fetch_add(1, Ordering::Relaxed);
    shared.store.insert_replica(key, &body);
    Some(body)
}

/// The session a request's negotiated memory model selects: the shared
/// flat session, or (for `"mem": "hierarchy"`) its lazily-built twin
/// with the timed L1/L2/shared servers enabled. The twin shares the
/// device, simulator configuration, scaling parameters, and repeat
/// count — only [`ArchConfig::mem`](gpa_arch::ArchConfig) differs.
fn session_for(shared: &Shared, hierarchy: bool) -> &Session {
    if !hierarchy {
        return &shared.session;
    }
    shared.hier_session.get_or_init(|| {
        let base = &shared.session;
        let session = Session::new(
            base.arch().clone().with_hierarchy(),
            base.sim_config().clone(),
            *base.params(),
        )
        .with_repeat(base.repeat());
        Arc::new(session)
    })
}

/// Computes one request on the shared session. Successful bodies go
/// into the report store under the request's content address (which
/// fires replication in cluster mode).
fn execute_local(shared: &Shared, request: Request) -> String {
    let key = request.cache_key();
    if let Some(key) = &key {
        if let Some(body) = warm_from_successor(shared, key) {
            return protocol::ok_frame(true, &body);
        }
    }
    match request {
        Request::Analyze { job, options } => {
            let session = session_for(shared, options.hierarchy);
            match session.run_one_request_repeat(&job, &options.request, options.repeat) {
                Ok(outcome) => {
                    let body = protocol::analyze_body(&outcome, options.schema).compact();
                    let stored = shared.store.insert(&key.expect("analyze is cacheable"), &body);
                    protocol::ok_frame(false, &stored)
                }
                Err(e) => {
                    shared.metrics.analysis_errors.fetch_add(1, Ordering::Relaxed);
                    protocol::job_error_frame(&e)
                }
            }
        }
        Request::AnalyzeProfile { job, profile, options, .. } => {
            let session = session_for(shared, options.hierarchy);
            match session.advise_profile_request(&job, &profile, &options.request) {
                Ok(report) => {
                    let body =
                        protocol::profile_body(&job, &profile, &report, options.schema).compact();
                    let stored =
                        shared.store.insert(&key.expect("analyze_profile is cacheable"), &body);
                    protocol::ok_frame(false, &stored)
                }
                Err(e) => {
                    shared.metrics.analysis_errors.fetch_add(1, Ordering::Relaxed);
                    protocol::job_error_frame(&e)
                }
            }
        }
        Request::Sleep { ms } => {
            std::thread::sleep(Duration::from_millis(ms));
            protocol::ok_frame(false, &format!("{{\"slept_ms\":{ms}}}"))
        }
        // A self-`leave` ships the whole store; it is the one
        // membership op that takes a worker slot.
        Request::Leave { .. } => drain_self(shared),
        // Handled inline by the connection layer; never queued.
        Request::Status
        | Request::Shutdown
        | Request::ProfileBegin { .. }
        | Request::ProfileChunk { .. }
        | Request::ProfileEnd { .. }
        | Request::ProfileAbort { .. }
        | Request::StoreGet { .. }
        | Request::StorePut { .. }
        | Request::Join { .. }
        | Request::RingStatus => {
            protocol::error_frame("internal error: control op reached the worker pool")
        }
    }
}

/// Ships queued `(key, body)` replications to the ring successor
/// (re-read per item: membership may have changed since the enqueue).
/// Runs on its own thread so a slow or dead successor never stalls an
/// analysis worker; exits when the sender side is dropped (shutdown).
fn replicator_loop(shared: &Shared, rx: &mpsc::Receiver<(String, String)>) {
    while let Ok((key, body)) = rx.recv() {
        shared.metrics.replication_queued.fetch_sub(1, Ordering::Relaxed);
        let Some(cluster) = &shared.cluster else { break };
        // No successor (solo ring, or drained off it): nothing to
        // replicate to — not a drop.
        let Some(successor) = cluster.successor() else { continue };
        let wire = Request::StorePut { key, body, meta: cluster.meta() }.to_wire();
        let sent = cluster.peers.call(&successor, &shared.metrics, false, |client| {
            client.request_line(&wire).map(drop)
        });
        match sent {
            Ok(()) => {
                shared.metrics.replicated_out.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => {
                shared.metrics.note_replication_drop(&format!("to {successor}: {e}"));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Cluster chores (background thread)
// ---------------------------------------------------------------------

/// The cluster chore thread: runs roster refreshes and handoff passes
/// off the request path; on idle ticks probes tripped peers (the probe
/// doubles as roster anti-entropy) and, every [`HEARTBEAT_INTERVAL`],
/// heartbeats the healthy members so a dead peer is discovered — and
/// its breaker tripped — before the first user call. Exits when the
/// task sender is dropped (shutdown).
fn cluster_loop(shared: &Shared, rx: &mpsc::Receiver<ClusterTask>) {
    let mut last_heartbeat = Instant::now();
    loop {
        if shared.shutting_down.load(Ordering::Acquire) {
            break;
        }
        match rx.recv_timeout(CLUSTER_TICK) {
            Ok(ClusterTask::Refresh(addr)) => refresh_from(shared, &addr),
            Ok(ClusterTask::Handoff) => run_handoff(shared),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                probe_tripped_peers(shared);
                if last_heartbeat.elapsed() >= HEARTBEAT_INTERVAL {
                    last_heartbeat = Instant::now();
                    heartbeat_members(shared);
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
}

/// One liveness pass over the roster: a cheap `ring_status` exchange
/// with every healthy member. Failures are recorded by the peer table
/// exactly like user-call failures, so three missed heartbeats trip the
/// member's breaker and user requests fail fast to local computation
/// instead of eating a connect timeout. Tripped members are skipped —
/// [`probe_tripped_peers`] owns them until the cooldown probe succeeds.
fn heartbeat_members(shared: &Shared) {
    let Some(cluster) = &shared.cluster else { return };
    for addr in cluster.members() {
        if shared.shutting_down.load(Ordering::Acquire) {
            return;
        }
        if addr == cluster.self_addr || cluster.peers.is_tripped(&addr) {
            continue;
        }
        shared.metrics.heartbeats.fetch_add(1, Ordering::Relaxed);
        refresh_from(shared, &addr);
    }
}

/// Pulls `ring_status` from `addr` and adopts anything newer than the
/// local roster.
fn refresh_from(shared: &Shared, addr: &str) {
    let Some(cluster) = &shared.cluster else { return };
    if addr == cluster.self_addr {
        return;
    }
    let wire = Request::RingStatus.to_wire();
    let Ok(line) = cluster.peers.call(addr, &shared.metrics, false, |client| {
        Ok(client.request_line(&wire)?.trim_end().to_string())
    }) else {
        return;
    };
    let Ok(reply) = Json::parse(&line) else { return };
    if !reply.get("ok").and_then(|v| v.as_bool().ok()).unwrap_or(false) {
        return;
    }
    let Some(result) = reply.get("result") else { return };
    let Some(epoch) = result.get("epoch").and_then(|v| v.as_u64().ok()) else { return };
    let Some(members) = result.get("members").and_then(|v| v.as_array().ok()) else { return };
    let members: Vec<String> =
        members.iter().filter_map(|v| v.as_str().ok().map(str::to_string)).collect();
    if cluster.adopt(epoch, &members) {
        shared.metrics.ring_refreshes.fetch_add(1, Ordering::Relaxed);
        cluster.schedule(ClusterTask::Handoff);
    }
}

/// One bounded handoff pass: scan the memory tier and re-ship every
/// entry the *current* ring maps to another owner. Runs after epoch
/// bumps; the scan is bounded by the store's capacity.
fn run_handoff(shared: &Shared) {
    let Some(cluster) = &shared.cluster else { return };
    if cluster.draining.load(Ordering::Acquire) {
        return;
    }
    let members = cluster.members();
    if members.len() < 2 {
        return;
    }
    let ring = Ring::new(members);
    for (key, body) in shared.store.entries() {
        if shared.shutting_down.load(Ordering::Acquire) {
            return;
        }
        let owner = ring.owner(&key);
        if owner != cluster.self_addr {
            ship_entry(shared, cluster, owner, &key, &body);
        }
    }
}

/// Sends one `ring_status` probe to every peer whose breaker cooldown
/// has elapsed: the success closes the breaker, and the answered
/// roster catches this shard up on anything it missed while the peer
/// was unreachable.
fn probe_tripped_peers(shared: &Shared) {
    let Some(cluster) = &shared.cluster else { return };
    for addr in cluster.peers.ready_to_probe() {
        if shared.shutting_down.load(Ordering::Acquire) {
            return;
        }
        refresh_from(shared, &addr);
    }
}

// ---------------------------------------------------------------------
// Threads engine (legacy; bench baseline)
// ---------------------------------------------------------------------

/// Joins connection threads that have already finished, so a long-lived
/// daemon serving many short connections does not accumulate handles.
fn reap_finished_connections(shared: &Shared) {
    let mut threads = shared.conn_threads.lock().expect("conn threads");
    let mut i = 0;
    while i < threads.len() {
        if threads[i].is_finished() {
            let _ = threads.swap_remove(i).join();
        } else {
            i += 1;
        }
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutting_down.load(Ordering::Acquire) {
                    break;
                }
                shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
                // See ServeClient::connect: small frames, no Nagle.
                let _ = stream.set_nodelay(true);
                let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
                if let Ok(clone) = stream.try_clone() {
                    shared.conns.lock().expect("conns lock").push((conn_id, clone));
                }
                reap_finished_connections(shared);
                let sh = Arc::clone(shared);
                if let Ok(handle) = std::thread::Builder::new()
                    .name("gpa-serve-conn".to_string())
                    .spawn(move || connection_loop(&sh, conn_id, stream))
                {
                    shared.conn_threads.lock().expect("conn threads").push(handle);
                }
            }
            Err(_) => {
                if shared.shutting_down.load(Ordering::Acquire) {
                    break;
                }
                // Transient accept errors (e.g. EMFILE): back off briefly
                // instead of spinning.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

fn connection_loop(shared: &Arc<Shared>, conn_id: u64, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        shared.conns.lock().expect("conns lock").retain(|(id, _)| *id != conn_id);
        return;
    };
    shared.metrics.open_connections.fetch_add(1, Ordering::Relaxed);
    // The threads-engine slow-client guard: a read that sits idle past
    // the deadline errors out (WouldBlock/TimedOut) and the connection
    // is reaped, mirroring the reactor's sweep.
    let _ = read_half.set_read_timeout(Some(shared.idle_timeout));
    let mut writer = stream;
    let mut reader = BufReader::new(read_half).take(MAX_REQUEST_BYTES);
    let mut line = String::new();
    let mut state = ConnState::default();
    loop {
        line.clear();
        reader.set_limit(MAX_REQUEST_BYTES);
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Err(e) => {
                if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) {
                    shared.metrics.idle_reaped.fetch_add(1, Ordering::Relaxed);
                }
                break;
            }
            Ok(_) => {}
        }
        if !line.ends_with('\n') && reader.limit() == 0 {
            // The frame hit the size cap without a newline; the stream
            // cannot be resynced, so answer and hang up.
            let frame = protocol::error_frame(&format!(
                "request exceeds {MAX_REQUEST_BYTES} bytes; closing connection"
            ));
            let _ = writeln!(writer, "{frame}");
            break;
        }
        if line.trim().is_empty() {
            continue;
        }
        let (response, control) = match handle_line(shared, &mut state, &line) {
            Handled::Reply(frame, control) => (frame, control),
            Handled::Dispatch(pending) => {
                let frame = match dispatch(shared, pending.request) {
                    Dispatched::Replied(frame) => {
                        if let Some(ticket) = pending.ticket {
                            settle_ticket(shared, ticket);
                        }
                        frame
                    }
                    Dispatched::Rejected { request, frame } => {
                        if let Some(ticket) = pending.ticket {
                            restore_upload(&mut state, ticket, request);
                        }
                        frame
                    }
                };
                (frame, Control::Continue)
            }
        };
        if writeln!(writer, "{response}").and_then(|()| writer.flush()).is_err() {
            break;
        }
        if matches!(control, Control::Shutdown) {
            trigger_shutdown(shared);
            break;
        }
    }
    // Abandoned uploads die with the connection — return their share of
    // the daemon-wide retained-PC budget.
    for upload in state.uploads.values() {
        release_upload_pcs(shared, upload);
    }
    shared.metrics.open_connections.fetch_sub(1, Ordering::Relaxed);
    // Deregister this connection's dup'd socket so a long-lived daemon
    // does not hold one CLOSE_WAIT fd per past client.
    shared.conns.lock().expect("conns lock").retain(|(id, _)| *id != conn_id);
}

// ---------------------------------------------------------------------
// Reactor engine
// ---------------------------------------------------------------------

const LISTENER_TOKEN: u64 = 0;
const WAKER_TOKEN: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// One reactor-managed connection: its socket, both buffers, and the
/// state-machine flags.
struct Conn {
    stream: TcpStream,
    token: u64,
    /// The reactor that owns this connection (indexes
    /// `Shared::reactors` for the per-reactor gauges and completion
    /// routing).
    reactor: usize,
    /// Accumulated request bytes not yet framed.
    read_buf: Vec<u8>,
    /// Queued response bytes; `written` of them are already on the
    /// socket.
    write_buf: Vec<u8>,
    written: usize,
    state: ConnState,
    /// One dispatched job in flight (per-connection serial execution:
    /// pipelined frames wait in `read_buf`, responses stay in order).
    busy: bool,
    /// `profile_end` bookkeeping for the in-flight job.
    ticket: Option<UploadTicket>,
    /// Stop reading; close once `write_buf` drains.
    close_after_drain: bool,
    /// This connection's `shutdown` op stops the daemon once its
    /// response frame is on the wire.
    shutdown_when_drained: bool,
    /// Last moment bytes arrived (the idle-sweep clock).
    last_activity: Instant,
    /// Interest currently registered with the poller.
    interest: Interest,
}

impl Conn {
    fn unwritten(&self) -> usize {
        self.write_buf.len() - self.written
    }

    /// Queues a response frame (newline-terminated) and grows both the
    /// daemon-wide and the owning reactor's pending-byte gauges.
    fn push_frame(&mut self, shared: &Shared, frame: &str) {
        self.write_buf.extend_from_slice(frame.as_bytes());
        self.write_buf.push(b'\n');
        let queued = frame.len() as u64 + 1;
        shared.metrics.pending_bytes.fetch_add(queued, Ordering::Relaxed);
        shared.reactors[self.reactor].stats.pending_bytes.fetch_add(queued, Ordering::Relaxed);
    }

    /// The interest this connection's state wants registered: reads
    /// unless gated (over the write budget, closing, or an oversized
    /// pipeline backlog), writes while anything is queued.
    fn desired_interest(&self) -> Interest {
        let gated = self.unwritten() > WRITE_GATE_BYTES
            || self.close_after_drain
            || self.read_buf.len() as u64 >= MAX_REQUEST_BYTES;
        Interest { readable: !gated, writable: self.unwritten() > 0 }
    }
}

/// Why a connection is being torn down (metrics bookkeeping).
enum CloseReason {
    /// Peer closed, I/O error, or normal end-of-session.
    Gone,
    /// The idle sweep reaped it.
    Idle,
}

/// A reactor-local stash of retired connection buffers. Bounded two
/// ways — [`POOL_MAX_BUFFERS`] slots, [`POOL_MAX_BUF_CAPACITY`] per
/// buffer — so connection churn recycles allocations without an
/// occasional huge upload turning the pool into a permanent hoard.
/// Thread-local to one reactor: no locks on the accept path.
struct BufferPool {
    bufs: Vec<Vec<u8>>,
}

impl BufferPool {
    fn new() -> BufferPool {
        BufferPool { bufs: Vec::new() }
    }

    /// An empty buffer, recycled when one is banked.
    fn take(&mut self, stats: &ReactorStats) -> Vec<u8> {
        match self.bufs.pop() {
            Some(buf) => {
                stats.buffer_reuses.fetch_add(1, Ordering::Relaxed);
                buf
            }
            None => Vec::new(),
        }
    }

    /// Banks a retired buffer, unless it never allocated, outgrew the
    /// per-buffer cap, or the pool is full.
    fn put(&mut self, mut buf: Vec<u8>) {
        if buf.capacity() == 0
            || buf.capacity() > POOL_MAX_BUF_CAPACITY
            || self.bufs.len() >= POOL_MAX_BUFFERS
        {
            return;
        }
        buf.clear();
        self.bufs.push(buf);
    }
}

/// One reactor thread: owns its poller, its connection table, its
/// buffer pool, and (reuseport, or reactor 0 under round-robin) a
/// listener; loops on readiness events, a completion list fed by
/// workers, handed-off sockets from the round-robin acceptor, and a
/// periodic tick for the idle sweep.
fn reactor_loop(shared: &Arc<Shared>, idx: usize, listener: Option<TcpListener>) {
    let rs = &shared.reactors[idx];
    let Ok(poller) = Poller::new() else { return };
    if let Some(listener) = &listener {
        if listener.set_nonblocking(true).is_err() {
            return;
        }
        if poller.add(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ).is_err() {
            return;
        }
    }
    if poller.add(rs.waker.fd(), WAKER_TOKEN, Interest::READ).is_err() {
        return;
    }
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token = FIRST_CONN_TOKEN;
    let mut events: Vec<Event> = Vec::new();
    let mut scratch = [0u8; 16 * 1024];
    let mut pool = BufferPool::new();
    // Round-robin cursor (the acceptor rotates over every reactor,
    // itself included). Unused on the reuseport path.
    let mut next_rr = idx;

    loop {
        events.clear();
        let _ = poller.wait(&mut events, TICK_MS);
        if shared.shutting_down.load(Ordering::Acquire) {
            break;
        }
        for &event in &events {
            match event.token {
                LISTENER_TOKEN if listener.is_some() => accept_ready(
                    shared,
                    idx,
                    &poller,
                    listener.as_ref().expect("listener event implies listener"),
                    &mut conns,
                    &mut next_token,
                    &mut next_rr,
                    &mut pool,
                ),
                WAKER_TOKEN => rs.waker.drain(),
                token => {
                    let Some(conn) = conns.get_mut(&token) else { continue };
                    let mut dead = event.closed;
                    if !dead && event.readable {
                        dead = !read_ready(shared, conn, &mut scratch);
                    }
                    if !dead && event.writable {
                        dead = !flush_writes(shared, conn);
                    }
                    if dead {
                        close_conn(
                            shared,
                            &poller,
                            &mut conns,
                            &mut pool,
                            token,
                            CloseReason::Gone,
                        );
                    } else {
                        finish_turn(shared, &poller, &mut conns, &mut pool, token);
                    }
                }
            }
        }
        // Sockets the round-robin acceptor handed over, then worker
        // completions — both can land without their waker event being
        // in this batch; drain unconditionally (uncontended locks).
        adopt_incoming(shared, idx, &poller, &mut conns, &mut next_token, &mut pool);
        deliver_completions(shared, idx, &poller, &mut conns, &mut pool);
        sweep_idle(shared, &poller, &mut conns, &mut pool);
        if shared.shutting_down.load(Ordering::Acquire) {
            break;
        }
    }
    drain_and_close(shared, idx, &poller, &mut conns, &mut pool);
}

/// Accepts everything pending on the listener; each socket is either
/// registered here (reuseport — the kernel already balanced it to this
/// reactor; round-robin when the rotation lands on the acceptor
/// itself) or handed to the rotation's next reactor through its
/// `incoming` list and waker.
#[allow(clippy::too_many_arguments)]
fn accept_ready(
    shared: &Shared,
    idx: usize,
    poller: &Poller,
    listener: &TcpListener,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
    next_rr: &mut usize,
    pool: &mut BufferPool,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutting_down.load(Ordering::Acquire) {
                    return;
                }
                let target = match shared.accept {
                    AcceptPath::RoundRobin => {
                        let t = *next_rr % shared.reactors.len();
                        *next_rr = (t + 1) % shared.reactors.len();
                        t
                    }
                    AcceptPath::Reuseport | AcceptPath::None => idx,
                };
                if target != idx {
                    let peer = &shared.reactors[target];
                    peer.incoming.lock().expect("incoming").push(stream);
                    peer.waker.wake();
                    continue;
                }
                register_conn(shared, idx, poller, stream, conns, next_token, pool);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Registers handed-off sockets from the round-robin acceptor into
/// this reactor's connection table.
fn adopt_incoming(
    shared: &Shared,
    idx: usize,
    poller: &Poller,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
    pool: &mut BufferPool,
) {
    let streams = std::mem::take(&mut *shared.reactors[idx].incoming.lock().expect("incoming"));
    for stream in streams {
        if shared.shutting_down.load(Ordering::Acquire) {
            return;
        }
        register_conn(shared, idx, poller, stream, conns, next_token, pool);
    }
}

/// Puts one accepted socket under this reactor's wing: nonblocking, no
/// Nagle, registered read-ready, buffers from the recycle pool.
fn register_conn(
    shared: &Shared,
    idx: usize,
    poller: &Poller,
    stream: TcpStream,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
    pool: &mut BufferPool,
) {
    if stream.set_nonblocking(true).is_err() {
        return;
    }
    // See ServeClient::connect: small frames, no Nagle.
    let _ = stream.set_nodelay(true);
    let token = *next_token;
    *next_token += 1;
    if poller.add(stream.as_raw_fd(), token, Interest::READ).is_err() {
        return;
    }
    let rs = &shared.reactors[idx];
    shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
    shared.metrics.open_connections.fetch_add(1, Ordering::Relaxed);
    rs.stats.accepted.fetch_add(1, Ordering::Relaxed);
    rs.stats.open_connections.fetch_add(1, Ordering::Relaxed);
    conns.insert(
        token,
        Conn {
            stream,
            token,
            reactor: idx,
            read_buf: pool.take(&rs.stats),
            write_buf: pool.take(&rs.stats),
            written: 0,
            state: ConnState::default(),
            busy: false,
            ticket: None,
            close_after_drain: false,
            shutdown_when_drained: false,
            last_activity: Instant::now(),
            interest: Interest::READ,
        },
    );
}

/// Pulls everything readable into the connection's buffer. Returns
/// `false` when the connection is finished (EOF or a hard error).
fn read_ready(shared: &Shared, conn: &mut Conn, scratch: &mut [u8]) -> bool {
    loop {
        match conn.stream.read(scratch) {
            Ok(0) => return false,
            Ok(n) => {
                conn.read_buf.extend_from_slice(&scratch[..n]);
                conn.last_activity = Instant::now();
                if conn.read_buf.len() as u64 > MAX_REQUEST_BYTES && !conn.read_buf.contains(&b'\n')
                {
                    // One frame over the cap and no newline in sight:
                    // the stream cannot be resynced. Same reply as the
                    // threads engine, then hang up.
                    shared.metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    let frame = protocol::error_frame(&format!(
                        "request exceeds {MAX_REQUEST_BYTES} bytes; closing connection"
                    ));
                    conn.read_buf.clear();
                    conn.push_frame(shared, &frame);
                    conn.close_after_drain = true;
                    return true;
                }
                // A full-buffer read may have more behind it; a short
                // read means the socket is drained (level-triggered, so
                // a wrong guess only costs one more wakeup).
                if n < scratch.len() {
                    return true;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
}

/// Writes as much queued response as the socket accepts. Returns
/// `false` on a dead socket.
fn flush_writes(shared: &Shared, conn: &mut Conn) -> bool {
    while conn.written < conn.write_buf.len() {
        match conn.stream.write(&conn.write_buf[conn.written..]) {
            Ok(0) => return false,
            Ok(n) => {
                conn.written += n;
                shared.metrics.pending_bytes.fetch_sub(n as u64, Ordering::Relaxed);
                shared.reactors[conn.reactor]
                    .stats
                    .pending_bytes
                    .fetch_sub(n as u64, Ordering::Relaxed);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    if conn.written == conn.write_buf.len() {
        conn.write_buf.clear();
        conn.written = 0;
    }
    true
}

/// Extracts and handles complete frames from the read buffer until the
/// connection goes busy (one in-flight job per connection keeps
/// responses in order) or runs out of full lines. Returns `false` when
/// the connection must close immediately (undecodable bytes).
fn process_frames(shared: &Shared, conn: &mut Conn) -> bool {
    while !conn.busy && !conn.close_after_drain {
        let Some(pos) = conn.read_buf.iter().position(|&b| b == b'\n') else { break };
        let line_bytes: Vec<u8> = conn.read_buf.drain(..=pos).collect();
        let Ok(line) = std::str::from_utf8(&line_bytes) else {
            // The threads engine's read_line fails the same way: a
            // non-UTF-8 frame ends the session.
            shared.metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
            conn.push_frame(shared, &protocol::error_frame("malformed request: not UTF-8"));
            conn.close_after_drain = true;
            break;
        };
        if line.trim().is_empty() {
            continue;
        }
        match handle_line(shared, &mut conn.state, line) {
            Handled::Reply(frame, control) => {
                conn.push_frame(shared, &frame);
                if matches!(control, Control::Shutdown) {
                    conn.close_after_drain = true;
                    conn.shutdown_when_drained = true;
                    break;
                }
            }
            Handled::Dispatch(pending) => {
                let reply = ReplyTo::Reactor { reactor: conn.reactor, token: conn.token };
                match try_enqueue(shared, pending.request, reply) {
                    Ok(()) => {
                        conn.busy = true;
                        conn.ticket = pending.ticket;
                    }
                    Err(rejection) => {
                        let (request, frame) = *rejection;
                        if let Some(ticket) = pending.ticket {
                            restore_upload(&mut conn.state, ticket, request);
                        }
                        conn.push_frame(shared, &frame);
                    }
                }
            }
        }
    }
    true
}

/// One connection's end-of-event bookkeeping: process buffered frames,
/// flush opportunistically (most responses fit the socket buffer, so
/// waiting for EPOLLOUT would add a poll round trip), then settle the
/// close-or-rearm decision.
fn finish_turn(
    shared: &Shared,
    poller: &Poller,
    conns: &mut HashMap<u64, Conn>,
    pool: &mut BufferPool,
    token: u64,
) {
    let Some(conn) = conns.get_mut(&token) else { return };
    if !process_frames(shared, conn) || !flush_writes(shared, conn) {
        close_conn(shared, poller, conns, pool, token, CloseReason::Gone);
        return;
    }
    if conn.close_after_drain && conn.unwritten() == 0 {
        if conn.shutdown_when_drained {
            trigger_shutdown(shared);
        }
        close_conn(shared, poller, conns, pool, token, CloseReason::Gone);
        return;
    }
    let desired = conn.desired_interest();
    if desired != conn.interest {
        if poller.modify(conn.stream.as_raw_fd(), token, desired).is_err() {
            close_conn(shared, poller, conns, pool, token, CloseReason::Gone);
            return;
        }
        conn.interest = desired;
    }
}

/// Hands worker completions to their connections and re-runs their
/// frame pumps (pipelined requests may be waiting).
fn deliver_completions(
    shared: &Shared,
    idx: usize,
    poller: &Poller,
    conns: &mut HashMap<u64, Conn>,
    pool: &mut BufferPool,
) {
    let completed =
        std::mem::take(&mut *shared.reactors[idx].completions.lock().expect("completions"));
    for (token, frame) in completed {
        let Some(conn) = conns.get_mut(&token) else {
            // The client left while its job ran; the body (if cacheable)
            // is in the store regardless.
            continue;
        };
        conn.busy = false;
        if let Some(ticket) = conn.ticket.take() {
            settle_ticket(shared, ticket);
        }
        conn.push_frame(shared, &frame);
        finish_turn(shared, poller, conns, pool, token);
    }
}

/// Reaps connections idle past the deadline (not waiting on a worker,
/// nothing left to write): the slow-client guard that keeps half-open
/// sockets from accumulating forever.
fn sweep_idle(
    shared: &Shared,
    poller: &Poller,
    conns: &mut HashMap<u64, Conn>,
    pool: &mut BufferPool,
) {
    let now = Instant::now();
    let stale: Vec<u64> = conns
        .values()
        .filter(|c| {
            !c.busy
                && c.unwritten() == 0
                && now.duration_since(c.last_activity) > shared.idle_timeout
        })
        .map(|c| c.token)
        .collect();
    for token in stale {
        close_conn(shared, poller, conns, pool, token, CloseReason::Idle);
    }
}

fn close_conn(
    shared: &Shared,
    poller: &Poller,
    conns: &mut HashMap<u64, Conn>,
    pool: &mut BufferPool,
    token: u64,
    reason: CloseReason,
) {
    let Some(mut conn) = conns.remove(&token) else { return };
    let _ = poller.delete(conn.stream.as_raw_fd());
    for upload in conn.state.uploads.values() {
        release_upload_pcs(shared, upload);
    }
    if let Some(ticket) = conn.ticket.take() {
        // The in-flight job will still finish and (if cacheable) land in
        // the store; its upload budget share is released here since no
        // completion handler will.
        settle_ticket(shared, ticket);
    }
    let rs = &shared.reactors[conn.reactor];
    shared.metrics.pending_bytes.fetch_sub(conn.unwritten() as u64, Ordering::Relaxed);
    rs.stats.pending_bytes.fetch_sub(conn.unwritten() as u64, Ordering::Relaxed);
    shared.metrics.open_connections.fetch_sub(1, Ordering::Relaxed);
    rs.stats.open_connections.fetch_sub(1, Ordering::Relaxed);
    if matches!(reason, CloseReason::Idle) {
        shared.metrics.idle_reaped.fetch_add(1, Ordering::Relaxed);
        rs.stats.idle_reaped.fetch_add(1, Ordering::Relaxed);
    }
    // Bank the buffers for the next connection; dropping the stream
    // closes the fd.
    pool.put(std::mem::take(&mut conn.read_buf));
    pool.put(std::mem::take(&mut conn.write_buf));
}

/// The shutdown drain: stop accepting, keep delivering completions and
/// flushing responses until every connection is settled (or the
/// deadline passes), then close everything. This is what gets the
/// `shutdown` op's own response onto the wire, and lets in-flight jobs
/// answer their clients.
fn drain_and_close(
    shared: &Shared,
    idx: usize,
    poller: &Poller,
    conns: &mut HashMap<u64, Conn>,
    pool: &mut BufferPool,
) {
    let deadline = Instant::now() + DRAIN_DEADLINE;
    let mut events: Vec<Event> = Vec::new();
    loop {
        deliver_completions(shared, idx, poller, conns, pool);
        // Connections with nothing owed can go now; reads are over.
        let settled: Vec<u64> =
            conns.values().filter(|c| !c.busy && c.unwritten() == 0).map(|c| c.token).collect();
        for token in settled {
            if let Some(c) = conns.get(&token) {
                if c.shutdown_when_drained {
                    trigger_shutdown(shared);
                }
            }
            close_conn(shared, poller, conns, pool, token, CloseReason::Gone);
        }
        if conns.is_empty() || Instant::now() >= deadline {
            break;
        }
        events.clear();
        let _ = poller.wait(&mut events, TICK_MS);
        shared.reactors[idx].waker.drain();
        for event in &events {
            if event.token < FIRST_CONN_TOKEN {
                continue;
            }
            if event.closed {
                close_conn(shared, poller, conns, pool, event.token, CloseReason::Gone);
            } else if event.writable {
                if let Some(conn) = conns.get_mut(&event.token) {
                    if !flush_writes(shared, conn) {
                        close_conn(shared, poller, conns, pool, event.token, CloseReason::Gone);
                    }
                }
            }
        }
        // Freshly queued frames may flush without an EPOLLOUT edge.
        let tokens: Vec<u64> = conns.keys().copied().collect();
        for token in tokens {
            if let Some(conn) = conns.get_mut(&token) {
                if conn.unwritten() > 0 {
                    let desired = Interest { readable: false, writable: true };
                    if desired != conn.interest
                        && poller.modify(conn.stream.as_raw_fd(), token, desired).is_ok()
                    {
                        conn.interest = desired;
                    }
                    if !flush_writes(shared, conn) {
                        close_conn(shared, poller, conns, pool, token, CloseReason::Gone);
                    }
                }
            }
        }
    }
    // Force-close whatever is left (deadline expired).
    let tokens: Vec<u64> = conns.keys().copied().collect();
    for token in tokens {
        close_conn(shared, poller, conns, pool, token, CloseReason::Gone);
    }
}

// ---------------------------------------------------------------------
// Status
// ---------------------------------------------------------------------

fn status_body(shared: &Shared) -> Json {
    let m = &shared.metrics;
    let st = shared.store.stats();
    let mut body = Json::object()
        .with("uptime_ms", m.uptime_ms())
        .with("engine", shared.engine.name())
        .with("workers", shared.workers)
        .with(
            "schemas",
            Json::Arr(
                protocol::SCHEMA_VERSIONS.iter().map(|&v| Json::from(u64::from(v))).collect(),
            ),
        )
        .with("connections", m.connections.load(Ordering::Relaxed))
        .with("ops", m.ops_json())
        .with(
            "reactor",
            m.reactor_json()
                .with("count", shared.reactors.len())
                .with("accept", shared.accept.name()),
        )
        .with(
            "reactors",
            Json::Arr(shared.reactors.iter().map(|r| r.stats.json(r.byte_budget)).collect()),
        )
        .with(
            "queue",
            Json::object()
                .with("depth", m.queue_depth.load(Ordering::Relaxed))
                .with("peak", m.queue_peak.load(Ordering::Relaxed))
                .with("capacity", shared.queue_capacity)
                .with("rejected", m.rejected.load(Ordering::Relaxed)),
        )
        .with(
            "store",
            Json::object()
                .with("entries", st.entries)
                .with("capacity", st.capacity)
                .with("hits", st.hits)
                .with("disk_hits", st.disk_hits)
                .with("misses", st.misses)
                .with("evictions", st.evictions)
                .with("persist_errors", st.persist_errors)
                .with("persisted", shared.persisted),
        )
        .with(
            "errors",
            Json::object()
                .with("protocol", m.protocol_errors.load(Ordering::Relaxed))
                .with("analysis", m.analysis_errors.load(Ordering::Relaxed)),
        );
    if let Some(cluster) = &shared.cluster {
        let (epoch, members, successor) = {
            let state = cluster.state.read().expect("cluster state");
            (state.roster.epoch(), state.roster.members().to_vec(), state.successor.clone())
        };
        let last_error =
            shared.metrics.last_replication_error.lock().expect("replication error lock").clone();
        body = body.with(
            "cluster",
            m.cluster_json()
                .with("self", cluster.self_addr.clone())
                .with("epoch", epoch)
                .with("draining", cluster.draining.load(Ordering::Relaxed))
                .with(
                    "members",
                    Json::Arr(members.iter().map(|s| Json::from(s.as_str())).collect()),
                )
                .with("successor", successor.map_or(Json::Null, Json::Str))
                .with(
                    "membership",
                    Json::object()
                        .with("stale_rejected", m.stale_epoch_rejected.load(Ordering::Relaxed))
                        .with("refreshes", m.ring_refreshes.load(Ordering::Relaxed))
                        .with("heartbeats", m.heartbeats.load(Ordering::Relaxed)),
                )
                .with(
                    "replication",
                    Json::object()
                        .with("queued", m.replication_queued.load(Ordering::Relaxed))
                        .with("shipped", m.replicated_out.load(Ordering::Relaxed))
                        .with("dropped", m.replication_dropped.load(Ordering::Relaxed))
                        .with("last_error", last_error.map_or(Json::Null, Json::Str)),
                )
                .with(
                    "handoff",
                    Json::object()
                        .with("shipped", m.handoff_shipped.load(Ordering::Relaxed))
                        .with("failed", m.handoff_failed.load(Ordering::Relaxed)),
                )
                .with("retry", cluster.peers.retry_json(m))
                .with(
                    "breaker",
                    Json::object()
                        .with("trips", m.breaker_trips.load(Ordering::Relaxed))
                        .with("fast_fails", m.breaker_fast_fails.load(Ordering::Relaxed))
                        .with("probes", m.peer_probes.load(Ordering::Relaxed))
                        .with("stale_retries", m.stale_retries.load(Ordering::Relaxed)),
                )
                .with("peers", cluster.peers.status_json())
                .with(
                    "faults",
                    match cluster.peers.faults() {
                        Some(plan) => {
                            Json::object().with("active", true).with("fired", plan.fired())
                        }
                        None => Json::object().with("active", false).with("fired", 0u64),
                    },
                ),
        );
    }
    body
}
