//! A cycle-level SIMT GPU simulator — the hardware substrate of GPA.
//!
//! The GPA paper measures real Volta V100 hardware through CUPTI PC
//! sampling. Without a GPU, this crate supplies the equivalent observable
//! behaviour: it executes kernels written in the [`gpa_isa`] instruction
//! set both *functionally* (per-lane register values, memory, divergence)
//! and *temporally* (warp schedulers, control-code stall counts, scoreboard
//! barriers, LSU back-pressure, instruction cache, pipe throughput), and
//! reports per-cycle warp states using the same stall taxonomy CUPTI
//! exposes ([`StallReason`]).
//!
//! Key timing rules, mirroring Volta's issue model:
//!
//! * a warp may issue its next instruction once the previous instruction's
//!   control-code **stall count** has elapsed,
//! * instructions with a **wait mask** block until the named scoreboard
//!   barriers clear; barriers are set by variable-latency producers
//!   (write barrier = result, read barrier = WAR protection on stores),
//! * a register **scoreboard interlock** guards cross-block fixed-latency
//!   dependencies the assembler could not cover statically,
//! * `BAR.SYNC` parks warps until the whole block arrives
//!   (synchronization stalls), taken branches pay a front-end redirect,
//!   instruction-cache misses pay a fetch penalty, a full LSU queue
//!   back-pressures memory instructions (memory-throttle stalls) and busy
//!   pipes reject issue (pipe-busy stalls).
//!
//! PC sampling (the paper's Figure 1) is integrated in the main loop: every
//! sampling period each SM samples one warp scheduler round-robin, emitting
//! an *active* or *latency* [`RawSample`] carrying the sampled warp's stall
//! reason. Samples **stream** into a [`SampleSink`]; the default sink
//! aggregates at the source into a columnar per-PC [`SampleSet`] (so peak
//! memory never scales with sample count), while a plain
//! `Vec<RawSample>` sink buffers the raw stream for tests and
//! differential checks (see `docs/profiling.md`).
//!
//! The scheduler core is **event-driven**: on cycles where no warp can
//! issue anywhere, the clock jumps straight to the next warp-ready time or
//! sampling tick instead of spinning (see `docs/simulator.md`). The dense
//! per-cycle loop survives behind [`SimConfig::dense_reference`] and the
//! differential tests assert both cores produce byte-identical
//! [`LaunchResult`]s. Lowering a module for simulation is separable and
//! cacheable: [`CompiledProgram`] is built once per (module, entry) and
//! reused across launches via [`GpuSim::launch_compiled`].
//!
//! # Example
//!
//! ```
//! use gpa_arch::{ArchConfig, LaunchConfig};
//! use gpa_isa::parse_module;
//! use gpa_sim::{GpuSim, SimConfig};
//!
//! let m = parse_module(r#"
//! .kernel k
//!   S2R R0, SR_TID.X {W:B0, S:1}
//!   MOV R1, c[0][0] {S:1}
//!   IADD R2, R0, R1 {WT:[B0], S:4}
//!   EXIT
//! .endfunc
//! "#)?;
//! let mut sim = GpuSim::new(ArchConfig::small(1), SimConfig::default());
//! let mut params = Vec::new();
//! params.extend_from_slice(&7u32.to_le_bytes());
//! let result = sim.launch(&m, "k", &LaunchConfig::new(1, 32), &params).unwrap();
//! assert!(result.cycles > 0);
//! # Ok::<(), gpa_isa::IsaError>(())
//! ```

pub mod exec;
pub mod hier;
pub mod machine;
pub mod mem;
pub mod reconv;
pub mod sample;
pub mod stall;
pub mod warp;

pub use hier::{SmHier, TimedServer};
pub use machine::{CompiledProgram, GpuSim, LaunchResult, RawSample, SimConfig, SmStats};
pub use mem::GlobalMem;
pub use sample::{SampleSet, SampleSink, N_REASONS};
pub use stall::StallReason;

use std::fmt;

/// Errors surfaced while simulating a kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The named kernel does not exist in the module.
    UnknownKernel(String),
    /// The module was not linked before launching.
    UnlinkedModule,
    /// The launch configuration is invalid for the machine.
    BadLaunch(String),
    /// The kernel exceeded the configured cycle budget (likely a hang).
    CycleLimit(u64),
    /// A functional fault: bad memory access, unmapped PC, bad operand.
    Fault {
        /// Program counter of the faulting instruction.
        pc: u64,
        /// Explanation of the fault.
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownKernel(k) => write!(f, "unknown kernel `{k}`"),
            SimError::UnlinkedModule => write!(f, "module must be linked before launch"),
            SimError::BadLaunch(m) => write!(f, "bad launch configuration: {m}"),
            SimError::CycleLimit(c) => write!(f, "cycle limit {c} exceeded (kernel hang?)"),
            SimError::Fault { pc, message } => write!(f, "fault at {pc:#x}: {message}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, SimError>;
