//! Aggregated kernel profiles: construction from streamed [`SampleSet`]s,
//! associative/commutative multi-launch merging, chunked splitting, and
//! the (strictly validated) JSON schema.

use gpa_arch::{LaunchConfig, OccLimiter, Occupancy};
use gpa_json::Json;
use gpa_sim::{LaunchResult, RawSample, SampleSet, StallReason};
use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::Path;

const N_REASONS: usize = gpa_sim::N_REASONS;

/// Sample statistics for one program counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PcStats {
    /// Total samples observed at this PC.
    pub total: u64,
    /// All samples by stall reason (indexed by [`StallReason::code`]).
    pub by_reason: [u64; N_REASONS],
    /// Latency samples (scheduler issued nothing) by stall reason.
    pub latency_by_reason: [u64; N_REASONS],
}

impl PcStats {
    /// Samples where this PC's warp was issuing (`Selected`).
    pub fn issued_samples(&self) -> u64 {
        self.by_reason[StallReason::Selected.code() as usize]
    }

    /// Samples with the given stall reason.
    pub fn stalls(&self, r: StallReason) -> u64 {
        self.by_reason[r.code() as usize]
    }

    /// Latency samples with the given stall reason.
    pub fn latency_stalls(&self, r: StallReason) -> u64 {
        self.latency_by_reason[r.code() as usize]
    }

    /// Total stall samples (everything but `Selected`).
    pub fn total_stalls(&self) -> u64 {
        self.total - self.issued_samples()
    }
}

/// A full PC-sampling profile of one kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelProfile {
    /// Kernel (entry function) name.
    pub kernel: String,
    /// Module the kernel came from.
    pub module_name: String,
    /// Architecture tag.
    pub arch: String,
    /// Sampling period in cycles.
    pub period: u32,
    /// Launch configuration.
    pub launch: LaunchConfig,
    /// Achieved occupancy.
    pub occupancy: Occupancy,
    /// Ground-truth kernel cycles (for validating estimates).
    pub cycles: u64,
    /// Ground-truth instructions issued.
    pub issued: u64,
    /// Per-PC statistics.
    pub pcs: BTreeMap<u64, PcStats>,
    /// Total samples (`T` in the paper's estimators).
    pub total_samples: u64,
    /// Active samples (`A`): the scheduler issued in the sampled cycle.
    pub active_samples: u64,
    /// Latency samples (`L = T − A`).
    pub latency_samples: u64,
    /// Global-memory transactions (32-byte sectors).
    pub mem_transactions: u64,
    /// L2 hits/misses.
    pub l2_hits: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// Instruction-cache misses.
    pub icache_misses: u64,
}

impl KernelProfile {
    /// Builds a profile from a launch's aggregated [`SampleSet`] (the
    /// default measurement path — the raw samples were never buffered).
    pub fn from_launch(
        kernel: &str,
        module_name: &str,
        arch: &str,
        period: u32,
        result: &LaunchResult,
    ) -> Self {
        Self::from_set(kernel, module_name, arch, period, &result.samples, result)
    }

    /// Builds a profile from an explicit [`SampleSet`] plus a launch's
    /// ground-truth metadata. Use this when the samples streamed into an
    /// external sink (so `result.samples` is empty) or were aggregated
    /// from a buffered raw stream.
    pub fn from_set(
        kernel: &str,
        module_name: &str,
        arch: &str,
        period: u32,
        set: &SampleSet,
        result: &LaunchResult,
    ) -> Self {
        let mut pcs: BTreeMap<u64, PcStats> = BTreeMap::new();
        for (pc, by_reason, latency_by_reason) in set.iter() {
            pcs.insert(
                pc,
                PcStats {
                    total: by_reason.iter().sum(),
                    by_reason: *by_reason,
                    latency_by_reason: *latency_by_reason,
                },
            );
        }
        KernelProfile {
            kernel: kernel.to_string(),
            module_name: module_name.to_string(),
            arch: arch.to_string(),
            period,
            launch: result.launch,
            occupancy: result.occupancy,
            cycles: result.cycles,
            issued: result.issued,
            pcs,
            total_samples: set.total_samples(),
            active_samples: set.active_samples(),
            latency_samples: set.latency_samples(),
            mem_transactions: result.mem_transactions,
            l2_hits: result.l2_hits,
            l2_misses: result.l2_misses,
            icache_misses: result.icache_misses,
        }
    }

    /// A profile with this profile's identity (kernel, module, arch,
    /// period, launch, occupancy) and zero measurements — the identity
    /// element of [`KernelProfile::merge`].
    pub fn empty_like(&self) -> Self {
        KernelProfile {
            kernel: self.kernel.clone(),
            module_name: self.module_name.clone(),
            arch: self.arch.clone(),
            period: self.period,
            launch: self.launch,
            occupancy: self.occupancy,
            cycles: 0,
            issued: 0,
            pcs: BTreeMap::new(),
            total_samples: 0,
            active_samples: 0,
            latency_samples: 0,
            mem_transactions: 0,
            l2_hits: 0,
            l2_misses: 0,
            icache_misses: 0,
        }
    }

    /// Merges another launch's profile of the **same kernel
    /// configuration** into this one (CUPTI-replay style): sample
    /// counters add pointwise (per PC and the kernel totals `T`/`A`/`L`),
    /// while per-launch ground-truth measurements (cycles, issued,
    /// memory/L2/i-cache counters) take the maximum — identical across
    /// deterministic replays, so merging `n` repeats of one launch leaves
    /// them untouched while the sample statistics sharpen.
    ///
    /// The operation is associative and commutative, with
    /// [`KernelProfile::empty_like`] as identity — chunked uploads and
    /// repeat profiling may fold profiles in any order. Counter
    /// additions are overflow-checked: a merge that would wrap `u64`
    /// fails with [`MergeError::CounterOverflow`] instead of producing
    /// an internally inconsistent profile (so a merged profile of
    /// consistent inputs is always itself consistent).
    ///
    /// # Errors
    ///
    /// When the two profiles disagree on kernel identity, architecture,
    /// sampling period, launch configuration, or occupancy.
    pub fn merge_in(&mut self, other: &KernelProfile) -> Result<(), MergeError> {
        fn check<T: PartialEq + fmt::Debug>(
            field: &'static str,
            a: &T,
            b: &T,
        ) -> Result<(), MergeError> {
            if a == b {
                Ok(())
            } else {
                Err(MergeError::Mismatch { field, left: format!("{a:?}"), right: format!("{b:?}") })
            }
        }
        fn add(field: &'static str, a: u64, b: u64) -> Result<u64, MergeError> {
            a.checked_add(b).ok_or(MergeError::CounterOverflow { field })
        }
        check("kernel", &self.kernel, &other.kernel)?;
        check("module_name", &self.module_name, &other.module_name)?;
        check("arch", &self.arch, &other.arch)?;
        check("period", &self.period, &other.period)?;
        check("launch", &self.launch, &other.launch)?;
        check("occupancy", &self.occupancy, &other.occupancy)?;
        // Validate every addition before mutating anything, so a failed
        // merge leaves `self` untouched (the daemon keeps a rejected
        // chunk's upload usable).
        for (&pc, st) in &other.pcs {
            if let Some(e) = self.pcs.get(&pc) {
                add("pcs", e.total, st.total)?;
                for (a, b) in e.by_reason.iter().zip(&st.by_reason) {
                    add("pcs", *a, *b)?;
                }
                for (a, b) in e.latency_by_reason.iter().zip(&st.latency_by_reason) {
                    add("pcs", *a, *b)?;
                }
            }
        }
        let total = add("total_samples", self.total_samples, other.total_samples)?;
        let active = add("active_samples", self.active_samples, other.active_samples)?;
        let latency = add("latency_samples", self.latency_samples, other.latency_samples)?;
        for (&pc, st) in &other.pcs {
            let e = self.pcs.entry(pc).or_default();
            e.total += st.total;
            for (a, b) in e.by_reason.iter_mut().zip(&st.by_reason) {
                *a += b;
            }
            for (a, b) in e.latency_by_reason.iter_mut().zip(&st.latency_by_reason) {
                *a += b;
            }
        }
        self.total_samples = total;
        self.active_samples = active;
        self.latency_samples = latency;
        self.cycles = self.cycles.max(other.cycles);
        self.issued = self.issued.max(other.issued);
        self.mem_transactions = self.mem_transactions.max(other.mem_transactions);
        self.l2_hits = self.l2_hits.max(other.l2_hits);
        self.l2_misses = self.l2_misses.max(other.l2_misses);
        self.icache_misses = self.icache_misses.max(other.icache_misses);
        Ok(())
    }

    /// [`KernelProfile::merge_in`] returning the merged profile.
    ///
    /// # Errors
    ///
    /// Same as [`KernelProfile::merge_in`].
    pub fn merge(&self, other: &KernelProfile) -> Result<KernelProfile, MergeError> {
        let mut merged = self.clone();
        merged.merge_in(other)?;
        Ok(merged)
    }

    /// Splits the profile into at most `chunks` internally consistent
    /// pieces (contiguous PC ranges, kernel totals recomputed per piece;
    /// ground-truth fields copied, which max-merging restores exactly).
    /// Merging the pieces in any order reproduces this profile — the
    /// client side of the daemon's chunked `profile_begin` /
    /// `profile_chunk` / `profile_end` upload.
    pub fn split_chunks(&self, chunks: usize) -> Vec<KernelProfile> {
        let chunks = chunks.max(1);
        if self.pcs.is_empty() {
            return vec![self.clone()];
        }
        let per = self.pcs.len().div_ceil(chunks);
        let entries: Vec<(&u64, &PcStats)> = self.pcs.iter().collect();
        entries
            .chunks(per)
            .map(|group| {
                // Each piece copies only its own PC group (plus the
                // cheap header), so the whole split is O(total PCs) —
                // chunking exists for profiles too large to ship whole.
                let pcs: BTreeMap<u64, PcStats> =
                    group.iter().map(|(&pc, st)| (pc, (*st).clone())).collect();
                let total_samples: u64 = pcs.values().map(|s| s.total).sum();
                let latency_samples: u64 = pcs.values().map(PcStats::latency_total).sum();
                KernelProfile {
                    kernel: self.kernel.clone(),
                    module_name: self.module_name.clone(),
                    arch: self.arch.clone(),
                    period: self.period,
                    launch: self.launch,
                    occupancy: self.occupancy,
                    cycles: self.cycles,
                    issued: self.issued,
                    pcs,
                    total_samples,
                    active_samples: total_samples - latency_samples,
                    latency_samples,
                    mem_transactions: self.mem_transactions,
                    l2_hits: self.l2_hits,
                    l2_misses: self.l2_misses,
                    icache_misses: self.icache_misses,
                }
            })
            .collect()
    }

    /// Kernel-level stall histogram over all samples.
    pub fn stall_histogram(&self) -> [u64; N_REASONS] {
        let mut h = [0u64; N_REASONS];
        for st in self.pcs.values() {
            for (i, c) in st.by_reason.iter().enumerate() {
                h[i] += c;
            }
        }
        h
    }

    /// Kernel-level latency-sample histogram.
    pub fn latency_histogram(&self) -> [u64; N_REASONS] {
        let mut h = [0u64; N_REASONS];
        for st in self.pcs.values() {
            for (i, c) in st.latency_by_reason.iter().enumerate() {
                h[i] += c;
            }
        }
        h
    }

    /// The issue ratio `R_I` — the fraction of samples in which the
    /// sampled scheduler was issuing (Eq. 8's input).
    pub fn issue_ratio(&self) -> f64 {
        if self.total_samples == 0 {
            return 0.0;
        }
        self.active_samples as f64 / self.total_samples as f64
    }

    /// Stats for one PC, if sampled.
    pub fn pc(&self, pc: u64) -> Option<&PcStats> {
        self.pcs.get(&pc)
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        self.to_doc().pretty()
    }

    /// The profile as a JSON document (the single place the wire/file
    /// layout lives; `compact()` of this is the canonical rendering the
    /// daemon content-addresses).
    pub fn to_doc(&self) -> Json {
        let pcs = Json::Obj(
            self.pcs
                .iter()
                .map(|(pc, st)| {
                    let stats = Json::object()
                        .with("total", st.total)
                        .with("by_reason", st.by_reason.to_vec())
                        .with("latency_by_reason", st.latency_by_reason.to_vec());
                    (pc.to_string(), stats)
                })
                .collect(),
        );
        Json::object()
            .with("kernel", self.kernel.clone())
            .with("module_name", self.module_name.clone())
            .with("arch", self.arch.clone())
            .with("period", self.period)
            .with(
                "launch",
                Json::object()
                    .with("grid_blocks", self.launch.grid_blocks)
                    .with("block_threads", self.launch.block_threads)
                    .with("regs_per_thread", self.launch.regs_per_thread)
                    .with("smem_per_block", self.launch.smem_per_block),
            )
            .with(
                "occupancy",
                Json::object()
                    .with("blocks_per_sm", self.occupancy.blocks_per_sm)
                    .with("warps_per_sm", self.occupancy.warps_per_sm)
                    .with("warps_per_scheduler", self.occupancy.warps_per_scheduler)
                    .with("limiter", limiter_str(self.occupancy.limiter))
                    .with("ratio", self.occupancy.ratio),
            )
            .with("cycles", self.cycles)
            .with("issued", self.issued)
            .with("pcs", pcs)
            .with("total_samples", self.total_samples)
            .with("active_samples", self.active_samples)
            .with("latency_samples", self.latency_samples)
            .with("mem_transactions", self.mem_transactions)
            .with("l2_hits", self.l2_hits)
            .with("l2_misses", self.l2_misses)
            .with("icache_misses", self.icache_misses)
    }

    /// Parses a profile from JSON text.
    ///
    /// # Errors
    ///
    /// Returns a [`gpa_json::JsonError`] on malformed input.
    pub fn from_json(s: &str) -> gpa_json::Result<Self> {
        Self::from_doc(&Json::parse(s)?)
    }

    /// Builds a profile from an already-parsed JSON document (e.g. a
    /// subtree of a larger request object).
    ///
    /// Validation is **strict**: unknown fields (at the top level and
    /// inside each per-PC stats object) are rejected rather than
    /// silently dropped, and the document must be internally consistent
    /// — each PC's `total` must equal the sum of its stall-reason
    /// counters, latency counters can never exceed their all-sample
    /// counterparts, and the kernel totals must equal the sums over the
    /// `pcs` table.
    ///
    /// # Errors
    ///
    /// Returns a [`gpa_json::JsonError`] when fields are missing, of
    /// the wrong type, unknown, or inconsistent.
    pub fn from_doc(doc: &Json) -> gpa_json::Result<Self> {
        let launch = doc.field("launch")?;
        let occ = doc.field("occupancy")?;
        let mut pcs = BTreeMap::new();
        for (key, stats) in doc.field("pcs")?.entries()? {
            let pc: u64 = key
                .parse()
                .map_err(|_| gpa_json::JsonError::from_msg(format!("bad pc key `{key}`")))?;
            let st = PcStats {
                total: stats.field("total")?.as_u64()?,
                by_reason: reason_array(stats.field("by_reason")?)?,
                latency_by_reason: reason_array(stats.field("latency_by_reason")?)?,
            };
            reject_unknown_keys(stats, &["total", "by_reason", "latency_by_reason"], "pc stats")?;
            // Checked sum: a crafted document whose counters overflow
            // u64 must be rejected, not silently wrapped past the very
            // consistency check below.
            let sum = checked_sum(st.by_reason.iter().copied()).ok_or_else(|| {
                gpa_json::JsonError::from_msg(format!("pc {pc}: stall-reason counters overflow"))
            })?;
            if sum != st.total {
                return Err(gpa_json::JsonError::from_msg(format!(
                    "pc {pc}: `total` is {} but its stall-reason counters sum to {sum}",
                    st.total
                )));
            }
            for (i, (&all, &lat)) in st.by_reason.iter().zip(&st.latency_by_reason).enumerate() {
                if lat > all {
                    let reason = StallReason::from_code(i as u8).expect("index within ALL");
                    return Err(gpa_json::JsonError::from_msg(format!(
                        "pc {pc}: {lat} latency samples exceed {all} total for reason `{reason}`"
                    )));
                }
            }
            pcs.insert(pc, st);
        }
        let profile = KernelProfile {
            kernel: doc.field("kernel")?.as_str()?.to_string(),
            module_name: doc.field("module_name")?.as_str()?.to_string(),
            arch: doc.field("arch")?.as_str()?.to_string(),
            period: doc.field("period")?.as_u32()?,
            launch: LaunchConfig {
                grid_blocks: launch.field("grid_blocks")?.as_u32()?,
                block_threads: launch.field("block_threads")?.as_u32()?,
                regs_per_thread: launch.field("regs_per_thread")?.as_u32()?,
                smem_per_block: launch.field("smem_per_block")?.as_u32()?,
            },
            occupancy: Occupancy {
                blocks_per_sm: occ.field("blocks_per_sm")?.as_u32()?,
                warps_per_sm: occ.field("warps_per_sm")?.as_u32()?,
                warps_per_scheduler: occ.field("warps_per_scheduler")?.as_f64()?,
                limiter: limiter_from_str(occ.field("limiter")?.as_str()?)?,
                ratio: occ.field("ratio")?.as_f64()?,
            },
            cycles: doc.field("cycles")?.as_u64()?,
            issued: doc.field("issued")?.as_u64()?,
            pcs,
            total_samples: doc.field("total_samples")?.as_u64()?,
            active_samples: doc.field("active_samples")?.as_u64()?,
            latency_samples: doc.field("latency_samples")?.as_u64()?,
            mem_transactions: doc.field("mem_transactions")?.as_u64()?,
            l2_hits: doc.field("l2_hits")?.as_u64()?,
            l2_misses: doc.field("l2_misses")?.as_u64()?,
            icache_misses: doc.field("icache_misses")?.as_u64()?,
        };
        reject_unknown_keys(
            doc,
            &[
                "kernel",
                "module_name",
                "arch",
                "period",
                "launch",
                "occupancy",
                "cycles",
                "issued",
                "pcs",
                "total_samples",
                "active_samples",
                "latency_samples",
                "mem_transactions",
                "l2_hits",
                "l2_misses",
                "icache_misses",
            ],
            "profile",
        )?;
        reject_unknown_keys(
            launch,
            &["grid_blocks", "block_threads", "regs_per_thread", "smem_per_block"],
            "launch",
        )?;
        reject_unknown_keys(
            occ,
            &["blocks_per_sm", "warps_per_sm", "warps_per_scheduler", "limiter", "ratio"],
            "occupancy",
        )?;
        // Kernel totals must agree with the per-PC table — a truncated
        // or hand-edited profile is rejected, not silently accepted.
        // Sums are checked: an overflowing table can never match a
        // (necessarily in-range) declared total.
        let pc_total = checked_sum(profile.pcs.values().map(|s| s.total));
        if pc_total != Some(profile.total_samples) {
            return Err(gpa_json::JsonError::from_msg(format!(
                "`total_samples` is {} but the pcs table sums to {}",
                profile.total_samples,
                pc_total.map_or_else(|| "more than u64::MAX".to_string(), |t| t.to_string()),
            )));
        }
        // Per-PC validation above bounds each entry's latency sum by its
        // (in-range) total, so this checked sum can only overflow if the
        // pc_total check would already have failed; it stays checked for
        // symmetry.
        let pc_latency = checked_sum(profile.pcs.values().map(PcStats::latency_total));
        if pc_latency != Some(profile.latency_samples) {
            return Err(gpa_json::JsonError::from_msg(format!(
                "`latency_samples` is {} but the pcs table sums to {}",
                profile.latency_samples,
                pc_latency.map_or_else(|| "more than u64::MAX".to_string(), |t| t.to_string()),
            )));
        }
        if profile.active_samples.checked_add(profile.latency_samples)
            != Some(profile.total_samples)
        {
            return Err(gpa_json::JsonError::from_msg(format!(
                "`active_samples` ({}) + `latency_samples` ({}) != `total_samples` ({})",
                profile.active_samples, profile.latency_samples, profile.total_samples
            )));
        }
        Ok(profile)
    }

    /// Writes the profile to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Reads a profile from a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; malformed JSON maps to
    /// [`io::ErrorKind::InvalidData`].
    pub fn load(path: &Path) -> io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Self::from_json(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// Two profiles that cannot be merged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// The profiles describe different kernels, configurations, or
    /// sampling setups.
    Mismatch {
        /// The profile field that disagrees.
        field: &'static str,
        /// The left profile's value (debug-rendered).
        left: String,
        /// The right profile's value (debug-rendered).
        right: String,
    },
    /// Adding the profiles' counters would overflow `u64` — merging
    /// would produce an internally inconsistent profile, so the merge
    /// is refused instead (real sample counts are bounded by kernel
    /// cycles; only crafted inputs get here).
    CounterOverflow {
        /// Which counter family overflowed.
        field: &'static str,
    },
}

impl MergeError {
    /// The profile field the error is about.
    pub fn field(&self) -> &'static str {
        match self {
            MergeError::Mismatch { field, .. } | MergeError::CounterOverflow { field } => field,
        }
    }
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::Mismatch { field, left, right } => write!(
                f,
                "profiles disagree on `{field}`: {left} vs {right} \
                 (merge requires identical kernel configurations)"
            ),
            MergeError::CounterOverflow { field } => {
                write!(f, "merging would overflow the `{field}` counters")
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// Incrementally folds per-launch profiles into one merged profile —
/// the accumulation side of replay-style repeat profiling and of the
/// daemon's chunked uploads. Feed it with [`ProfileBuilder::add`] (an
/// already-built profile) or [`ProfileBuilder::add_launch`] (straight
/// from a launch's [`SampleSet`]); only the running merge is retained,
/// never the individual launches.
#[derive(Debug, Default)]
pub struct ProfileBuilder {
    acc: Option<KernelProfile>,
    launches: u64,
}

impl ProfileBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        ProfileBuilder::default()
    }

    /// Number of profiles folded in so far.
    pub fn launches(&self) -> u64 {
        self.launches
    }

    /// Folds one profile into the running merge.
    ///
    /// # Errors
    ///
    /// When the profile disagrees with the accumulated kernel
    /// configuration (see [`KernelProfile::merge_in`]).
    pub fn add(&mut self, profile: &KernelProfile) -> Result<(), MergeError> {
        match &mut self.acc {
            None => self.acc = Some(profile.clone()),
            Some(acc) => acc.merge_in(profile)?,
        }
        self.launches += 1;
        Ok(())
    }

    /// Folds one launch's samples in directly (see
    /// [`KernelProfile::from_launch`]).
    ///
    /// # Errors
    ///
    /// Same as [`ProfileBuilder::add`].
    pub fn add_launch(
        &mut self,
        kernel: &str,
        module_name: &str,
        arch: &str,
        period: u32,
        result: &LaunchResult,
    ) -> Result<(), MergeError> {
        self.add(&KernelProfile::from_launch(kernel, module_name, arch, period, result))
    }

    /// The merged profile, or `None` when nothing was added.
    pub fn build(self) -> Option<KernelProfile> {
        self.acc
    }
}

/// Overflow-checked sum for validating untrusted counter tables.
fn checked_sum(values: impl Iterator<Item = u64>) -> Option<u64> {
    let mut acc = 0u64;
    for v in values {
        acc = acc.checked_add(v)?;
    }
    Some(acc)
}

/// Rejects fields outside `known` so schema typos and foreign data are
/// surfaced instead of silently accepted.
fn reject_unknown_keys(doc: &Json, known: &[&str], what: &str) -> gpa_json::Result<()> {
    for (key, _) in doc.entries()? {
        if !known.contains(&key.as_str()) {
            return Err(gpa_json::JsonError::from_msg(format!(
                "unknown field `{key}` in {what} (expected one of: {})",
                known.join(", ")
            )));
        }
    }
    Ok(())
}

fn limiter_str(l: OccLimiter) -> &'static str {
    match l {
        OccLimiter::Warps => "Warps",
        OccLimiter::Registers => "Registers",
        OccLimiter::SharedMem => "SharedMem",
        OccLimiter::Blocks => "Blocks",
        OccLimiter::GridSize => "GridSize",
    }
}

fn limiter_from_str(s: &str) -> gpa_json::Result<OccLimiter> {
    Ok(match s {
        "Warps" => OccLimiter::Warps,
        "Registers" => OccLimiter::Registers,
        "SharedMem" => OccLimiter::SharedMem,
        "Blocks" => OccLimiter::Blocks,
        "GridSize" => OccLimiter::GridSize,
        _ => return Err(gpa_json::JsonError::from_msg(format!("unknown limiter `{s}`"))),
    })
}

fn reason_array(v: &Json) -> gpa_json::Result<[u64; N_REASONS]> {
    let items = v.as_array()?;
    if items.len() != N_REASONS {
        return Err(gpa_json::JsonError::from_msg(format!(
            "expected {N_REASONS} stall-reason counters, got {}",
            items.len()
        )));
    }
    let mut out = [0u64; N_REASONS];
    for (slot, item) in out.iter_mut().zip(items) {
        *slot = item.as_u64()?;
    }
    Ok(out)
}

/// Builds the paper's Figure 1 style classification for a sample.
///
/// Returns `(is_active, is_latency, is_stall)`.
pub fn classify_sample(s: &RawSample) -> (bool, bool, bool) {
    (s.scheduler_active, !s.scheduler_active, s.stall.is_stall())
}

impl PcStats {
    /// Total latency samples (scheduler idle) at this PC.
    pub fn latency_total(&self) -> u64 {
        self.latency_by_reason.iter().sum()
    }

    /// Total active samples (scheduler issuing) at this PC.
    pub fn active_total(&self) -> u64 {
        self.total - self.latency_total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_arch::ArchConfig;

    fn fake_result(samples: Vec<RawSample>) -> LaunchResult {
        let arch = ArchConfig::small(1);
        let launch = LaunchConfig::new(1, 32);
        LaunchResult {
            cycles: 1000,
            issued: 100,
            samples: SampleSet::from_raw(&samples),
            issue_counts: Default::default(),
            mem_transactions: 5,
            l2_hits: 3,
            l2_misses: 2,
            icache_misses: 1,
            occupancy: arch.occupancy(&launch),
            launch,
            sm_stats: vec![],
        }
    }

    fn sample(pc: u64, stall: StallReason, active: bool) -> RawSample {
        RawSample { sm: 0, scheduler: 0, cycle: 0, pc, stall, scheduler_active: active }
    }

    #[test]
    fn aggregation_matches_figure1_model() {
        // Figure 1: six samples — three latency (all stalls), two active
        // with stalls (other warp issued), one active issuing.
        let samples = vec![
            sample(0x10, StallReason::MemoryDependency, false),
            sample(0x20, StallReason::Selected, true),
            sample(0x10, StallReason::ExecutionDependency, true),
            sample(0x30, StallReason::MemoryDependency, false),
            sample(0x10, StallReason::NotSelected, true),
            sample(0x30, StallReason::Synchronization, false),
        ];
        let p = KernelProfile::from_launch("k", "m", "volta", 509, &fake_result(samples));
        assert_eq!(p.total_samples, 6);
        assert_eq!(p.active_samples, 3);
        assert_eq!(p.latency_samples, 3);
        assert_eq!(p.issue_ratio(), 0.5);
        let stalls: u64 = StallReason::ALL
            .iter()
            .filter(|r| r.is_stall())
            .map(|r| p.stall_histogram()[r.code() as usize])
            .sum();
        assert_eq!(stalls, 5, "five stall samples");
        let at10 = p.pc(0x10).unwrap();
        assert_eq!(at10.total, 3);
        assert_eq!(at10.stalls(StallReason::MemoryDependency), 1);
        assert_eq!(at10.latency_stalls(StallReason::MemoryDependency), 1);
        assert_eq!(at10.latency_stalls(StallReason::ExecutionDependency), 0);
    }

    #[test]
    fn json_roundtrip() {
        let samples = vec![
            sample(0x10, StallReason::MemoryDependency, false),
            sample(0x20, StallReason::Selected, true),
        ];
        let p = KernelProfile::from_launch("k", "m", "volta", 509, &fake_result(samples));
        let p2 = KernelProfile::from_json(&p.to_json()).unwrap();
        assert_eq!(p, p2);
    }

    /// A small valid profile's JSON text, as surgery material for the
    /// error-path tests below.
    fn valid_profile_text() -> String {
        let samples = vec![
            sample(0x10, StallReason::MemoryDependency, false),
            sample(0x20, StallReason::Selected, true),
        ];
        KernelProfile::from_launch("k", "m", "volta", 509, &fake_result(samples)).to_json()
    }

    #[test]
    fn missing_fields_are_named_in_the_error() {
        let text = valid_profile_text();
        for field in ["kernel", "arch", "period", "launch", "occupancy", "pcs", "cycles"] {
            let broken = text.replacen(&format!("\"{field}\""), "\"_gone\"", 1);
            let err = KernelProfile::from_json(&broken).unwrap_err();
            assert!(
                err.to_string().contains(&format!("missing field `{field}`")),
                "dropping {field}: {err}"
            );
        }
    }

    #[test]
    fn wrong_types_are_type_errors_not_panics() {
        let text = valid_profile_text();
        for (needle, replacement, expect) in [
            ("\"period\": 509", "\"period\": \"509\"", "expected unsigned integer"),
            ("\"kernel\": \"k\"", "\"kernel\": 7", "expected string"),
            ("\"cycles\": 1000", "\"cycles\": -5", "expected unsigned integer"),
            ("\"period\": 509", "\"period\": 99999999999", "exceeds u32"),
        ] {
            assert!(text.contains(needle), "surgery target {needle:?} present");
            let broken = text.replacen(needle, replacement, 1);
            let err = KernelProfile::from_json(&broken).unwrap_err();
            assert!(err.to_string().contains(expect), "{replacement}: {err}");
        }
    }

    #[test]
    fn bad_pc_keys_and_reason_arrays_are_rejected() {
        let text = valid_profile_text();
        let broken = text.replacen("\"16\"", "\"sixteen\"", 1);
        let err = KernelProfile::from_json(&broken).unwrap_err();
        assert!(err.to_string().contains("bad pc key `sixteen`"), "{err}");

        // One counter short in a by_reason array: mutate the parsed
        // document so the test is independent of pretty-print layout.
        let mut doc = Json::parse(&text).unwrap();
        let Json::Obj(fields) = &mut doc else { panic!("profile is an object") };
        let pcs = fields.iter_mut().find(|(k, _)| k == "pcs").map(|(_, v)| v).unwrap();
        let Json::Obj(pc_entries) = pcs else { panic!("pcs is an object") };
        let Json::Obj(stats) = &mut pc_entries[0].1 else { panic!("stats is an object") };
        let reasons = stats.iter_mut().find(|(k, _)| k == "by_reason").map(|(_, v)| v).unwrap();
        let Json::Arr(counters) = reasons else { panic!("by_reason is an array") };
        counters.pop();
        let err = KernelProfile::from_doc(&doc).unwrap_err();
        assert!(err.to_string().contains("stall-reason counters"), "{err}");
    }

    #[test]
    fn unknown_limiter_is_rejected() {
        let text = valid_profile_text();
        let limiter = format!("\"limiter\": \"{:?}\"", OccLimiter::GridSize);
        assert!(text.contains(&limiter), "surgery target present in {text}");
        let broken = text.replacen(&limiter, "\"limiter\": \"Vibes\"", 1);
        let err = KernelProfile::from_json(&broken).unwrap_err();
        assert!(err.to_string().contains("unknown limiter `Vibes`"), "{err}");
    }

    #[test]
    fn truncated_input_is_a_parse_error_at_every_cut() {
        let text = valid_profile_text();
        // Cut at several byte offsets, including mid-string and
        // mid-number; every prefix must fail cleanly.
        for cut in [1, text.len() / 4, text.len() / 2, text.len() - 2] {
            let truncated = &text[..cut];
            assert!(KernelProfile::from_json(truncated).is_err(), "accepted a {cut}-byte prefix");
        }
    }

    #[test]
    fn non_object_documents_are_rejected() {
        for doc in ["[]", "42", "\"profile\"", "null", "true"] {
            assert!(KernelProfile::from_json(doc).is_err(), "accepted {doc}");
        }
    }

    #[test]
    fn empty_profile_is_safe() {
        let p = KernelProfile::from_launch("k", "m", "volta", 509, &fake_result(vec![]));
        assert_eq!(p.total_samples, 0);
        assert_eq!(p.issue_ratio(), 0.0);
        assert!(p.pc(0x10).is_none());
    }

    fn two_pc_profile() -> KernelProfile {
        KernelProfile::from_launch(
            "k",
            "m",
            "volta",
            509,
            &fake_result(vec![
                sample(0x10, StallReason::MemoryDependency, false),
                sample(0x10, StallReason::Selected, true),
                sample(0x20, StallReason::Synchronization, false),
            ]),
        )
    }

    #[test]
    fn merge_adds_samples_and_maxes_ground_truth() {
        let a = two_pc_profile();
        let mut b = two_pc_profile();
        b.cycles = 900; // a slightly faster replay
        let m = a.merge(&b).unwrap();
        assert_eq!(m.total_samples, 6);
        assert_eq!(m.active_samples, 2);
        assert_eq!(m.latency_samples, 4);
        assert_eq!(m.pc(0x10).unwrap().total, 4);
        assert_eq!(m.pc(0x10).unwrap().stalls(StallReason::MemoryDependency), 2);
        assert_eq!(m.cycles, 1000, "ground truth takes the representative (max) launch");
        assert_eq!(m.issued, 100);
    }

    #[test]
    fn merge_is_commutative_and_has_an_identity() {
        let a = two_pc_profile();
        let mut b = two_pc_profile();
        b.pcs.remove(&0x20);
        b.total_samples = 2;
        b.active_samples = 1;
        b.latency_samples = 1;
        assert_eq!(a.merge(&b).unwrap(), b.merge(&a).unwrap());
        let empty = a.empty_like();
        assert_eq!(a.merge(&empty).unwrap(), a);
        assert_eq!(empty.merge(&a).unwrap(), a);
    }

    #[test]
    fn merge_rejects_mismatched_configurations() {
        let a = two_pc_profile();
        let mut other_kernel = two_pc_profile();
        other_kernel.kernel = "different".into();
        let err = a.merge(&other_kernel).unwrap_err();
        assert_eq!(err.field(), "kernel");
        assert!(err.to_string().contains("profiles disagree on `kernel`"), "{err}");
        let mut other_period = two_pc_profile();
        other_period.period = 127;
        assert_eq!(a.merge(&other_period).unwrap_err().field(), "period");
    }

    #[test]
    fn builder_folds_launches_incrementally() {
        let b = ProfileBuilder::new();
        assert!(b.build().is_none());
        let mut b = ProfileBuilder::new();
        b.add(&two_pc_profile()).unwrap();
        b.add(&two_pc_profile()).unwrap();
        assert_eq!(b.launches(), 2);
        let merged = b.build().unwrap();
        assert_eq!(merged, two_pc_profile().merge(&two_pc_profile()).unwrap());
    }

    #[test]
    fn split_chunks_round_trips_through_merge() {
        let p = two_pc_profile();
        for n in [1, 2, 5] {
            let chunks = p.split_chunks(n);
            assert!(chunks.len() <= n.max(1));
            // Every chunk is internally consistent — it parses under the
            // strict validator.
            for c in &chunks {
                assert_eq!(KernelProfile::from_json(&c.to_json()).unwrap(), *c);
            }
            let mut b = ProfileBuilder::new();
            for c in &chunks {
                b.add(c).unwrap();
            }
            assert_eq!(b.build().unwrap(), p, "merging {n} chunks reproduces the profile");
        }
    }

    #[test]
    fn overflowing_counters_are_rejected_not_wrapped() {
        // Two PCs whose totals are individually valid but sum past
        // u64::MAX: the kernel-total check must reject, not wrap.
        let mut huge = two_pc_profile();
        for st in huge.pcs.values_mut() {
            let code = StallReason::Other.code() as usize;
            st.by_reason[code] = u64::MAX - st.total;
            st.total = u64::MAX;
        }
        huge.total_samples = u64::MAX; // declared total is in range
        huge.active_samples = u64::MAX - huge.latency_samples;
        let err = KernelProfile::from_json(&huge.to_json()).unwrap_err();
        assert!(err.to_string().contains("more than u64::MAX"), "{err}");

        // A single PC whose own counters overflow is caught per-PC.
        let mut huge = two_pc_profile();
        let st = huge.pcs.get_mut(&0x10).unwrap();
        st.by_reason[0] = u64::MAX;
        st.by_reason[1] = u64::MAX;
        let err = KernelProfile::from_json(&huge.to_json()).unwrap_err();
        assert!(err.to_string().contains("counters overflow"), "{err}");
    }

    #[test]
    fn merge_refuses_counter_overflow_without_mutating() {
        // Two individually consistent profiles whose per-PC counters
        // would wrap u64 when added: the merge is refused (a wrapped
        // result would be internally inconsistent and panic downstream
        // sums), and the accumulator is left untouched for retries.
        let near_max = || {
            let mut p = two_pc_profile();
            let st = p.pcs.get_mut(&0x10).unwrap();
            let code = StallReason::Other.code() as usize;
            st.by_reason[code] = u64::MAX / 2 + 1;
            st.total += u64::MAX / 2 + 1;
            p.total_samples += u64::MAX / 2 + 1;
            p.active_samples += u64::MAX / 2 + 1;
            p
        };
        let a = near_max();
        let mut acc = a.clone();
        let err = acc.merge_in(&near_max()).unwrap_err();
        assert!(matches!(err, MergeError::CounterOverflow { .. }), "{err:?}");
        assert!(err.to_string().contains("overflow"), "{err}");
        assert_eq!(acc, a, "failed merge leaves the accumulator untouched");
        // Merged consistent profiles stay consistent: the strict parser
        // accepts what merge produces.
        let merged = two_pc_profile().merge(&two_pc_profile()).unwrap();
        assert_eq!(KernelProfile::from_json(&merged.to_json()).unwrap(), merged);
    }

    #[test]
    fn unknown_fields_are_rejected_everywhere() {
        let text = valid_profile_text();
        // Renaming a known field is reported as the field going missing
        // (extraction runs first)...
        for (needle, replacement, expect) in [
            ("\"module_name\"", "\"modulo_name\"", "missing field `module_name`"),
            ("\"by_reason\"", "\"by_raisin\"", "missing field `by_reason`"),
            ("\"smem_per_block\"", "\"smem_per_war\"", "missing field `smem_per_block`"),
        ] {
            let broken = text.replacen(needle, replacement, 1);
            let err = KernelProfile::from_json(&broken).unwrap_err();
            assert!(err.to_string().contains(expect), "{replacement}: {err}");
        }
        // ...while an extra field is rejected as unknown, at every level
        // of the document.
        for (anchor, extra, expect) in [
            ("\"cycles\"", "\"mystery\": 1, ", "unknown field `mystery` in profile"),
            ("\"total\"", "\"vibes\": 1, ", "unknown field `vibes` in pc stats"),
            ("\"ratio\"", "\"raito\": 1, ", "unknown field `raito` in occupancy"),
            (
                "\"smem_per_block\"",
                "\"smem_per_war\": 1, ",
                "unknown field `smem_per_war` in launch",
            ),
        ] {
            assert!(text.contains(anchor), "anchor {anchor} present");
            let broken = text.replacen(anchor, &format!("{extra}{anchor}"), 1);
            let err = KernelProfile::from_json(&broken).unwrap_err();
            assert!(err.to_string().contains(expect), "{extra}: {err}");
        }
    }

    #[test]
    fn inconsistent_totals_are_rejected() {
        let p = two_pc_profile();
        // Kernel total disagrees with the pcs table.
        let mut broken = p.clone();
        broken.total_samples += 1;
        broken.active_samples += 1; // keep A + L = T so the sum check fires
        let err = KernelProfile::from_json(&broken.to_json()).unwrap_err();
        assert!(err.to_string().contains("`total_samples` is 4"), "{err}");
        // Latency total disagrees.
        let mut broken = p.clone();
        broken.latency_samples -= 1;
        broken.active_samples += 1;
        let err = KernelProfile::from_json(&broken.to_json()).unwrap_err();
        assert!(err.to_string().contains("`latency_samples` is 1"), "{err}");
        // A + L != T.
        let mut broken = p.clone();
        broken.active_samples += 1;
        let err = KernelProfile::from_json(&broken.to_json()).unwrap_err();
        assert!(err.to_string().contains("!= `total_samples`"), "{err}");
        // A PC's own counters disagree with its total.
        let mut broken = p.clone();
        broken.pcs.get_mut(&0x10).unwrap().total += 1;
        broken.total_samples += 1;
        broken.active_samples += 1;
        let err = KernelProfile::from_json(&broken.to_json()).unwrap_err();
        assert!(err.to_string().contains("stall-reason counters sum to"), "{err}");
        // Latency exceeding all-samples for one reason (caught while
        // parsing the pcs table, before the kernel totals).
        let mut broken = p;
        broken.pcs.get_mut(&0x10).unwrap().latency_by_reason
            [StallReason::Selected.code() as usize] += 2;
        let err = KernelProfile::from_json(&broken.to_json()).unwrap_err();
        assert!(err.to_string().contains("latency samples exceed"), "{err}");
    }
}
