//! Control-flow analysis for GPA's static analyzer.
//!
//! The GPA paper recovers control-flow graphs from `nvdisasm` output,
//! splits super blocks into basic blocks, and feeds the result to Dyninst
//! for loop-nest analysis. This crate is that substrate, built from
//! scratch:
//!
//! * [`Cfg`] — basic blocks and edges of one [`gpa_isa::Function`],
//! * [`Dominators`] / [`PostDominators`] — iterative Cooper–Harvey–Kennedy
//!   dominator trees (postdominators drive branch reconvergence in the
//!   simulator),
//! * [`LoopForest`] — natural loops and their nesting, used both by the
//!   Loop Unrolling optimizer and by Eq. 5's scope analysis,
//! * path queries ([`Cfg::min_instrs_between`],
//!   [`Cfg::max_instrs_between`], [`Cfg::on_every_path`]) backing the
//!   blamer's latency- and dominator-based pruning rules and the Eq. 1
//!   path-ratio heuristic.
//!
//! # Example
//!
//! ```
//! use gpa_isa::parse_module;
//! use gpa_cfg::{Cfg, LoopForest};
//!
//! let m = parse_module(r#"
//! .kernel k
//!   MOV32I R0, 0 {S:1}
//! top:
//!   IADD R0, R0, 1 {S:4}
//!   ISETP.LT.AND P0, R0, 10 {S:2}
//!   @P0 BRA top {S:5}
//!   EXIT
//! .endfunc
//! "#)?;
//! let f = m.function("k").unwrap();
//! let cfg = Cfg::build(f);
//! let loops = LoopForest::build(&cfg);
//! assert_eq!(loops.loops().len(), 1);
//! # Ok::<(), gpa_isa::IsaError>(())
//! ```

mod block;
mod dom;
mod loops;
mod paths;

pub use block::{BasicBlock, BlockId, Cfg};
pub use dom::{Dominators, PostDominators};
pub use loops::{Loop, LoopForest, LoopId};
