//! The profiling front end: launch + sample + aggregate in one call.

use crate::profile::KernelProfile;
use gpa_arch::LaunchConfig;
use gpa_isa::Module;
use gpa_sim::{CompiledProgram, GpuSim, LaunchResult, Result};

/// Profiles kernels on a simulated device.
///
/// This is GPA's "profiler" component: it runs the kernel with PC sampling
/// enabled and returns both the aggregated profile (what CUPTI would hand
/// back) and the raw launch result (ground truth the real tool would not
/// have — kept for validation).
#[derive(Debug)]
pub struct Profiler {
    gpu: GpuSim,
}

impl Profiler {
    /// Wraps a device.
    pub fn new(gpu: GpuSim) -> Self {
        Profiler { gpu }
    }

    /// The underlying device (e.g. to initialize global memory).
    pub fn gpu(&self) -> &GpuSim {
        &self.gpu
    }

    /// Mutable access to the underlying device.
    pub fn gpu_mut(&mut self) -> &mut GpuSim {
        &mut self.gpu
    }

    /// Consumes the profiler, returning the device.
    pub fn into_gpu(self) -> GpuSim {
        self.gpu
    }

    /// Launches `entry` and aggregates its PC samples into a profile.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (unknown kernel, faults, cycle limit).
    pub fn profile(
        &mut self,
        module: &Module,
        entry: &str,
        launch: &LaunchConfig,
        params: &[u8],
    ) -> Result<(KernelProfile, LaunchResult)> {
        let prog = self.gpu.compile(module, entry)?;
        self.profile_compiled(&prog, launch, params)
    }

    /// Launches an already-compiled program (see [`GpuSim::compile`]) and
    /// aggregates its PC samples into a profile — the repeat-launch path:
    /// the module lowering (instruction cloning, reconvergence analysis)
    /// is paid once, not per launch.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (arch mismatch, faults, cycle limit).
    pub fn profile_compiled(
        &mut self,
        prog: &CompiledProgram,
        launch: &LaunchConfig,
        params: &[u8],
    ) -> Result<(KernelProfile, LaunchResult)> {
        let result = self.gpu.launch_compiled(prog, launch, params)?;
        let profile = KernelProfile::from_launch(
            prog.entry(),
            prog.module_name(),
            prog.isa_arch(),
            self.gpu.config().sampling_period,
            &result,
        );
        Ok((profile, result))
    }

    /// Times a launch without sampling (for achieved-speedup measurements:
    /// sampling overhead never perturbs our simulator, but the real tool
    /// measures optimized variants without instrumentation).
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn time_only(
        &mut self,
        module: &Module,
        entry: &str,
        launch: &LaunchConfig,
        params: &[u8],
    ) -> Result<u64> {
        let prog = self.gpu.compile(module, entry)?;
        self.time_only_compiled(&prog, launch, params)
    }

    /// Times an already-compiled program without sampling.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn time_only_compiled(
        &mut self,
        prog: &CompiledProgram,
        launch: &LaunchConfig,
        params: &[u8],
    ) -> Result<u64> {
        let saved = self.gpu.config().sampling_period;
        self.gpu.config_mut().sampling_period = 0;
        let r = self.gpu.launch_compiled(prog, launch, params);
        self.gpu.config_mut().sampling_period = saved;
        Ok(r?.cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_arch::ArchConfig;
    use gpa_isa::parse_module;
    use gpa_sim::{SimConfig, StallReason};

    const KERNEL: &str = r#"
.module p
.kernel k
  S2R R0, SR_TID.X {W:B0, S:1}
  MOV R2, c[0][0] {S:1}
  MOV R3, c[0][4] {S:1}
  SHL R1, R0, 2 {WT:[B0], S:2}
  IADD R2:R3, R2:R3, R1 {S:2}
  LDG.E.32 R4, [R2:R3] {W:B1, S:1}
  IADD R5, R4, 1 {WT:[B1], S:4}
  STG.E.32 [R2:R3], R5 {R:B2, S:1}
  EXIT {WT:[B2], S:1}
.endfunc
"#;

    #[test]
    fn profile_collects_memory_dependency_stalls() {
        let m = parse_module(KERNEL).unwrap();
        let mut cfg = SimConfig::default();
        cfg.sampling_period = 13;
        let mut prof = Profiler::new(GpuSim::new(ArchConfig::small(1), cfg));
        let buf = prof.gpu_mut().global_mut().alloc(4 * 64);
        let params: Vec<u8> = buf.to_le_bytes().to_vec();
        let (profile, result) = prof.profile(&m, "k", &LaunchConfig::new(2, 32), &params).unwrap();
        assert_eq!(profile.cycles, result.cycles);
        assert!(profile.total_samples > 0);
        let hist = profile.stall_histogram();
        assert!(hist[StallReason::MemoryDependency.code() as usize] > 0);
        // The increment landed.
        assert_eq!(prof.gpu().global().read_u32(buf), 1);
    }

    #[test]
    fn time_only_leaves_no_samples_and_restores_period() {
        let m = parse_module(KERNEL).unwrap();
        let mut prof = Profiler::new(GpuSim::new(ArchConfig::small(1), SimConfig::default()));
        let buf = prof.gpu_mut().global_mut().alloc(4 * 64);
        let params: Vec<u8> = buf.to_le_bytes().to_vec();
        let cycles = prof.time_only(&m, "k", &LaunchConfig::new(1, 32), &params).unwrap();
        assert!(cycles > 0);
        assert_eq!(prof.gpu().config().sampling_period, SimConfig::default().sampling_period);
    }

    #[test]
    fn sampling_period_changes_sample_count_not_shape() {
        let m = parse_module(KERNEL).unwrap();
        let run = |period: u32| {
            let mut cfg = SimConfig::default();
            cfg.sampling_period = period;
            let mut prof = Profiler::new(GpuSim::new(ArchConfig::small(1), cfg));
            let buf = prof.gpu_mut().global_mut().alloc(4 * 128);
            let params: Vec<u8> = buf.to_le_bytes().to_vec();
            prof.profile(&m, "k", &LaunchConfig::new(4, 32), &params).unwrap().0
        };
        let fine = run(7);
        let coarse = run(29);
        assert!(fine.total_samples > coarse.total_samples);
        // Both see the kernel as memory-latency bound.
        for p in [&fine, &coarse] {
            let hist = p.stall_histogram();
            let mem = hist[StallReason::MemoryDependency.code() as usize];
            assert!(mem > 0, "memory stalls visible at any period");
        }
    }
}
