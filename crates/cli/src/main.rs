//! The `gpa` command-line tool.
//!
//! Mirrors the paper's workflow: GPA "is a command line tool that
//! automates profiling and analysis stages". Subcommands:
//!
//! ```text
//! gpa list                      enumerate built-in benchmark kernels
//! gpa analyze <app> [variant]   profile a kernel and print the advice report
//! gpa profile <app> [variant]   dump the PC-sampling profile as JSON
//! gpa asm <app> [variant]       print the kernel's assembly
//! ```

use gpa_core::{report, Advisor};
use gpa_kernels::runner::{arch_for, run_spec};
use gpa_kernels::{all_apps, apps::app_by_name, Params};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: gpa <command> [args]\n\n  list                    list built-in kernels\n  analyze <app> [variant] profile + advise (default variant 0)\n  profile <app> [variant] dump the profile JSON\n  asm <app> [variant]     print kernel assembly"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { return usage() };
    let p = Params::full();
    match cmd.as_str() {
        "list" => {
            for app in all_apps() {
                let stages: Vec<&str> = app.stages.iter().map(|s| s.name).collect();
                println!("{:<24} kernel {:<28} stages: {}", app.name, app.kernel, stages.join(", "));
            }
            ExitCode::SUCCESS
        }
        "analyze" | "profile" | "asm" => {
            let Some(name) = args.get(1) else { return usage() };
            let Some(app) = app_by_name(name) else {
                eprintln!("unknown app `{name}` (try `gpa list`)");
                return ExitCode::FAILURE;
            };
            let variant: usize = args.get(2).and_then(|v| v.parse().ok()).unwrap_or(0);
            if variant >= app.variants() {
                eprintln!("{name} has variants 0..{}", app.variants() - 1);
                return ExitCode::FAILURE;
            }
            let spec = (app.build)(variant, &p);
            if cmd == "asm" {
                print!("{}", spec.module.write_asm());
                return ExitCode::SUCCESS;
            }
            let arch = arch_for(&p);
            let run = match run_spec(&spec, &arch) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("simulation failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if cmd == "profile" {
                println!("{}", run.profile.to_json());
                return ExitCode::SUCCESS;
            }
            let advice = Advisor::new().advise(&spec.module, &run.profile, &arch);
            print!("{}", report::render(&advice, 5));
            println!("kernel cycles: {}", run.cycles);
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
