//! `rodinia/sradv1` — `reduce`.
//!
//! The block-sum reduction barriers between every tree level; in the
//! last levels only a few threads work while whole warps wait. Reducing
//! within warps via shuffles first removes most of the barriers (Warp
//! Balance; paper: a small 1.03× achieved, 1.16× estimated — the paper
//! notes the estimator overshoots here).

use crate::data::ParamBlock;
use crate::dsl::Asm;
use crate::{App, KernelSpec, Params, Stage};
use gpa_arch::LaunchConfig;

/// Builds the sradv1 app entry.
pub fn app() -> App {
    App {
        name: "rodinia/sradv1",
        kernel: "reduce",
        stages: vec![Stage { name: "Warp Balance", optimizer: "GPUWarpBalanceOptimizer" }],
        build,
    }
}

fn build(variant: usize, p: &Params) -> KernelSpec {
    let balanced = variant >= 1;
    let mut a = Asm::module("sradv1");
    a.kernel("reduce");
    a.line("srad.cu", 82);
    a.global_tid();
    a.i("LOP3.AND R1, R0, 255 {S:4}");
    a.param_u64(4, 0);
    a.addr(6, 4, 0, 2);
    a.i("LDG.E.32 R22, [R6:R7] {W:B0, S:1}");
    a.i("SHL R9, R1, 2 {S:4}");
    a.i("STS.32 [R9], R22 {WT:[B0], R:B1, S:2}");
    a.i("BAR.SYNC {S:2}");
    a.line("srad.cu", 88);
    if balanced {
        // In-warp shuffle reduction, one barrier, warp-0 fold.
        for d in [16u32, 8, 4, 2, 1] {
            a.i("S2R R25, SR_LANEID {W:B3, S:1}");
            a.i(format!("IADD R26, R25, {d} {{WT:[B3], S:4}}"));
            a.i("SHFL R27, R22, R26 {W:B4, S:1}");
            a.i("FADD R22, R22, R27 {WT:[B4], S:4}");
        }
        a.i("S2R R28, SR_LANEID {W:B3, S:1}");
        a.i("ISETP.EQ.AND P0, R28, 0 {WT:[B3], S:2}");
        a.i("SHR.U32 R29, R1, 5 {S:4}");
        a.i("SHL R30, R29, 2 {S:4}");
        a.i("@P0 STS.32 [R30+0x400], R22 {R:B1, S:2}");
        a.i("BAR.SYNC {S:2}");
        a.i("ISETP.GE.AND P1, R1, 8 {S:2}");
        a.i("@P1 BRA done {S:5}");
        a.i("SHL R31, R1, 2 {S:4}");
        a.i("LDS.32 R22, [R31+0x400] {W:B5, S:1}");
        for d in [4u32, 2, 1] {
            a.i(format!("IADD R26, R1, {d} {{S:4}}"));
            a.i("SHFL R27, R22, R26 {WT:[B5], W:B4, S:1}");
            a.i("FADD R22, R22, R27 {WT:[B4], S:4}");
        }
        a.label("done");
    } else {
        // Shared-memory tree with a barrier per level: the active set
        // halves each level while everyone synchronizes.
        for d in [128u32, 64, 32, 16, 8, 4, 2, 1] {
            a.i(format!("ISETP.GE.AND P0, R1, {d} {{S:2}}"));
            a.i(format!("IADD R24, R1, {d} {{S:4}}"));
            a.i("SHL R25, R24, 2 {S:4}");
            a.i("@!P0 LDS.32 R26, [R25] {W:B2, S:1}");
            a.i("@!P0 FADD R22, R22, R26 {WT:[B2], S:4}");
            a.i("SHL R27, R1, 2 {S:4}");
            a.i("@!P0 STS.32 [R27], R22 {R:B1, S:2}");
            a.i("BAR.SYNC {S:2}");
        }
    }
    // Lane 0 stores the block sum.
    a.i("ISETP.NE.AND P3, R1, 0 {S:2}");
    a.param_u64(34, 8);
    a.i("S2R R36, SR_CTAID.X {W:B3, S:1}");
    a.i("NOP {WT:[B3], S:1}");
    a.addr(38, 34, 36, 2);
    a.i("@!P3 STG.E.32 [R38:R39], R22 {R:B1, S:2}");
    a.i("EXIT {WT:[B1], S:1}");
    a.endfunc();
    let module = a.build();

    let blocks = p.sms * 4 * p.scale;
    let threads: u32 = 256;
    let n = blocks * threads;
    KernelSpec {
        module,
        entry: "reduce".into(),
        launch: LaunchConfig { smem_per_block: 4096 + 64, ..LaunchConfig::new(blocks, threads) },
        setup: Box::new(move |gpu| {
            let mut rng = crate::data::rng(0x5057_000C);
            let img = gpu.global_mut().alloc(4 * n as u64);
            gpu.global_mut()
                .write_bytes(img, &crate::data::f32_bytes(&mut rng, n as usize, 0.0, 1.0));
            let out = gpu.global_mut().alloc(4 * blocks as u64);
            let mut pb = ParamBlock::new();
            pb.push_u64(img);
            pb.push_u64(out);
            pb.finish()
        }),
        const_bank1: None,
    }
}
