//! Fixed-length 128-bit binary encoding.
//!
//! Volta and later NVIDIA architectures use a 128-bit instruction word that
//! packs the opcode, predicate, modifiers, operands and the control-code
//! fields (wait mask, write/read barriers, stall count, yield flag). This
//! module implements an equivalent self-consistent layout:
//!
//! ```text
//! bits   0..8    opcode
//! bits   8..12   guard predicate (0xF = none; bit 3 = negated, bits 0..3 = reg)
//! bits  12..32   modifiers (four 5-bit slots, 0 = empty)
//! bits  32..49   control code (stall:4, yield:1, wbar:3, rbar:3, wait:6)
//! bits  49..51   destination-operand count
//! bits  51..54   source-operand count
//! bits  54..128  operand stream (4-bit tag + payload each)
//! ```
//!
//! Instructions whose operands exceed the 74-bit stream cannot be encoded
//! and yield [`IsaError::EncodingOverflow`]; the assembler and the kernel
//! builders stay within the limit (as a real ISA's operand formats would).

use crate::control::ControlCode;
use crate::instruction::{Instruction, Modifier};
use crate::opcode::Opcode;
use crate::operand::{MemRef, Operand};
use crate::register::{BarrierReg, PredReg, Predicate, Register, SpecialReg};
use crate::{IsaError, Result};

/// A 128-bit instruction word in little-endian byte order.
pub type EncodedInstruction = [u8; 16];

const OPERAND_START: usize = 54;

const TAG_REG: u64 = 1;
const TAG_REGPAIR: u64 = 2;
const TAG_PRED: u64 = 3;
const TAG_SREG: u64 = 4;
const TAG_IMM16: u64 = 5;
const TAG_IMM32: u64 = 6;
const TAG_FIMM: u64 = 7;
const TAG_CMEM: u64 = 8;
const TAG_MEM: u64 = 9;

struct BitWriter {
    word: u128,
    pos: usize,
}

impl BitWriter {
    fn new() -> Self {
        BitWriter { word: 0, pos: 0 }
    }

    fn write(&mut self, value: u64, bits: usize) -> Result<()> {
        debug_assert!(bits <= 64);
        if self.pos + bits > 128 {
            return Err(IsaError::EncodingOverflow(format!(
                "operand stream overflows 128-bit word at bit {}",
                self.pos + bits
            )));
        }
        let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
        self.word |= ((value & mask) as u128) << self.pos;
        self.pos += bits;
        Ok(())
    }

    fn seek(&mut self, pos: usize) {
        self.pos = pos;
    }
}

struct BitReader {
    word: u128,
    pos: usize,
}

impl BitReader {
    fn new(word: u128) -> Self {
        BitReader { word, pos: 0 }
    }

    fn read(&mut self, bits: usize) -> u64 {
        debug_assert!(bits <= 64 && self.pos + bits <= 128);
        let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
        let v = ((self.word >> self.pos) as u64) & mask;
        self.pos += bits;
        v
    }

    fn seek(&mut self, pos: usize) {
        self.pos = pos;
    }
}

fn encode_operand(w: &mut BitWriter, op: &Operand) -> Result<()> {
    match *op {
        Operand::Reg(r) => {
            w.write(TAG_REG, 4)?;
            w.write(r.index() as u64, 8)
        }
        Operand::RegPair(r) => {
            w.write(TAG_REGPAIR, 4)?;
            w.write(r.index() as u64, 8)
        }
        Operand::Pred(p) => {
            w.write(TAG_PRED, 4)?;
            w.write(p.index() as u64, 4)
        }
        Operand::SReg(s) => {
            w.write(TAG_SREG, 4)?;
            w.write(s.code() as u64, 6)
        }
        Operand::Imm(v) => {
            if (-(1 << 15)..(1 << 15)).contains(&v) {
                w.write(TAG_IMM16, 4)?;
                w.write((v as i16 as u16) as u64, 16)
            } else if (-(1i64 << 31)..(1i64 << 31)).contains(&v) {
                w.write(TAG_IMM32, 4)?;
                w.write((v as i32 as u32) as u64, 32)
            } else {
                Err(IsaError::EncodingOverflow(format!("immediate {v} exceeds 32 bits")))
            }
        }
        Operand::FImm(v) => {
            w.write(TAG_FIMM, 4)?;
            w.write((v as f32).to_bits() as u64, 32)
        }
        Operand::CMem { bank, offset } => {
            if bank > 15 {
                return Err(IsaError::EncodingOverflow(format!("constant bank {bank} > 15")));
            }
            w.write(TAG_CMEM, 4)?;
            w.write(bank as u64, 4)?;
            w.write(offset as u64, 16)
        }
        Operand::Mem(m) => {
            if !(-(1 << 15)..(1 << 15)).contains(&(m.offset as i64)) {
                return Err(IsaError::EncodingOverflow(format!(
                    "memory offset {} exceeds 16 bits",
                    m.offset
                )));
            }
            w.write(TAG_MEM, 4)?;
            w.write(m.base.index() as u64, 8)?;
            w.write(m.wide as u64, 1)?;
            w.write((m.offset as i16 as u16) as u64, 16)
        }
    }
}

fn decode_operand(r: &mut BitReader) -> Result<Operand> {
    let tag = r.read(4);
    match tag {
        TAG_REG => Ok(Operand::Reg(Register::from_u8(r.read(8) as u8))),
        TAG_REGPAIR => Ok(Operand::RegPair(Register::from_u8(r.read(8) as u8))),
        TAG_PRED => PredReg::new(r.read(4) as u32).map(Operand::Pred),
        TAG_SREG => SpecialReg::from_code(r.read(6) as u8)
            .map(Operand::SReg)
            .ok_or_else(|| IsaError::DecodeError("bad special register code".into())),
        TAG_IMM16 => Ok(Operand::Imm(r.read(16) as u16 as i16 as i64)),
        TAG_IMM32 => Ok(Operand::Imm(r.read(32) as u32 as i32 as i64)),
        TAG_FIMM => Ok(Operand::FImm(f32::from_bits(r.read(32) as u32) as f64)),
        TAG_CMEM => {
            let bank = r.read(4) as u8;
            let offset = r.read(16) as u16;
            Ok(Operand::CMem { bank, offset })
        }
        TAG_MEM => {
            let base = Register::from_u8(r.read(8) as u8);
            let wide = r.read(1) != 0;
            let offset = r.read(16) as u16 as i16 as i32;
            Ok(Operand::Mem(MemRef { base, offset, wide }))
        }
        _ => Err(IsaError::DecodeError(format!("unknown operand tag {tag}"))),
    }
}

/// Encodes one instruction into a 128-bit word.
///
/// # Errors
///
/// Returns [`IsaError::EncodingOverflow`] when the instruction has more than
/// two destinations, seven sources, four modifiers, or operands that do not
/// fit the 74-bit operand stream.
pub fn encode(instr: &Instruction) -> Result<EncodedInstruction> {
    instr.ctrl.validate()?;
    if instr.dsts.len() > 2 {
        return Err(IsaError::EncodingOverflow("more than 2 destinations".into()));
    }
    if instr.srcs.len() > 7 {
        return Err(IsaError::EncodingOverflow("more than 7 sources".into()));
    }
    if instr.mods.len() > 4 {
        return Err(IsaError::EncodingOverflow("more than 4 modifiers".into()));
    }
    let mut w = BitWriter::new();
    w.write(instr.opcode.code() as u64, 8)?;
    let pred_bits = match instr.pred {
        None => 0xF,
        Some(p) => (p.reg.index() as u64) | ((p.negated as u64) << 3),
    };
    w.write(pred_bits, 4)?;
    for slot in 0..4 {
        let code = instr.mods.get(slot).map_or(0, |m| m.code());
        w.write(code as u64, 5)?;
    }
    let c = &instr.ctrl;
    w.write(c.stall as u64, 4)?;
    w.write(c.yield_flag as u64, 1)?;
    w.write(c.write_barrier.map_or(7, |b| b.index()) as u64, 3)?;
    w.write(c.read_barrier.map_or(7, |b| b.index()) as u64, 3)?;
    w.write(c.wait_mask as u64, 6)?;
    w.write(instr.dsts.len() as u64, 2)?;
    w.write(instr.srcs.len() as u64, 3)?;
    debug_assert_eq!(w.pos, OPERAND_START);
    for op in instr.dsts.iter().chain(instr.srcs.iter()) {
        encode_operand(&mut w, op)?;
    }
    w.seek(128);
    Ok(w.word.to_le_bytes())
}

/// Decodes a 128-bit word back into an [`Instruction`].
///
/// # Errors
///
/// Returns [`IsaError::DecodeError`] on unknown opcode, modifier, or operand
/// tag bits.
pub fn decode(word: &EncodedInstruction) -> Result<Instruction> {
    let mut r = BitReader::new(u128::from_le_bytes(*word));
    let opcode = Opcode::from_code(r.read(8) as u8)
        .ok_or_else(|| IsaError::DecodeError("unknown opcode".into()))?;
    let pred_bits = r.read(4);
    let pred = if pred_bits == 0xF {
        None
    } else {
        let reg = PredReg::new((pred_bits & 0x7) as u32)
            .map_err(|_| IsaError::DecodeError("bad predicate".into()))?;
        Some(Predicate { reg, negated: pred_bits & 0x8 != 0 })
    };
    let mut mods = Vec::new();
    for _ in 0..4 {
        let code = r.read(5) as u8;
        if code != 0 {
            let m = Modifier::from_code(code)
                .ok_or_else(|| IsaError::DecodeError("unknown modifier code".into()))?;
            mods.push(m);
        }
    }
    let stall = r.read(4) as u8;
    let yield_flag = r.read(1) != 0;
    let wbar = r.read(3) as u8;
    let rbar = r.read(3) as u8;
    let wait_mask = r.read(6) as u8;
    let ctrl = ControlCode {
        stall,
        yield_flag,
        write_barrier: if wbar == 7 { None } else { Some(BarrierReg::new(wbar as u32)?) },
        read_barrier: if rbar == 7 { None } else { Some(BarrierReg::new(rbar as u32)?) },
        wait_mask,
    };
    let ndst = r.read(2) as usize;
    let nsrc = r.read(3) as usize;
    debug_assert_eq!(r.pos, OPERAND_START);
    let mut dsts = Vec::with_capacity(ndst);
    for _ in 0..ndst {
        dsts.push(decode_operand(&mut r)?);
    }
    let mut srcs = Vec::with_capacity(nsrc);
    for _ in 0..nsrc {
        srcs.push(decode_operand(&mut r)?);
    }
    r.seek(128);
    Ok(Instruction { pred, opcode, mods, dsts, srcs, ctrl })
}

/// Dissects an instruction into the field table of the paper's **Table 1**:
/// wait mask, write barrier, read barrier, predicate, opcode, modifiers,
/// destination operands and source operands.
pub fn dissect(instr: &Instruction) -> Vec<(&'static str, String)> {
    let join = |ops: &[Operand]| ops.iter().map(|o| o.to_string()).collect::<Vec<_>>().join(", ");
    // Source operands are shown at the register level (the paper lists the
    // 64-bit address of `[R2]` as the two registers R2, R3).
    let src_regs: Vec<String> = instr
        .srcs
        .iter()
        .flat_map(|s| {
            let regs = s.src_regs();
            if regs.is_empty() {
                vec![s.to_string()]
            } else {
                regs.into_iter().map(|r| r.to_string()).collect()
            }
        })
        .collect();
    vec![
        ("Wait Mask", instr.ctrl.waits().map(|b| b.to_string()).collect::<Vec<_>>().join(", ")),
        ("Write Barrier", instr.ctrl.write_barrier.map_or(String::new(), |b| b.to_string())),
        ("Read Barrier", instr.ctrl.read_barrier.map_or(String::new(), |b| b.to_string())),
        ("Predicate", instr.pred.map_or(String::new(), |p| p.to_string().replace('@', ""))),
        ("Opcode", instr.opcode.to_string()),
        ("Modifiers", instr.mods.iter().map(|m| m.to_string()).collect::<Vec<_>>().join(", ")),
        ("Destination Operands", join(&instr.dsts)),
        ("Source Operands", src_regs.join(", ")),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::register::Predicate;

    fn r(n: u8) -> Register {
        Register::from_u8(n)
    }

    fn sample() -> Instruction {
        Instruction::new(
            Opcode::Ldg,
            vec![Operand::Reg(r(0))],
            vec![Operand::Mem(MemRef { base: r(2), offset: 0, wide: true })],
        )
        .with_mod(Modifier::Sz32)
        .with_pred(Predicate::pos(PredReg::new(0).unwrap()))
        .with_ctrl(
            ControlCode::none()
                .with_write_barrier(BarrierReg::new(0).unwrap())
                .with_read_barrier(BarrierReg::new(1).unwrap())
                .with_wait(BarrierReg::new(0).unwrap())
                .with_wait(BarrierReg::new(1).unwrap()),
        )
    }

    #[test]
    fn roundtrip_table1() {
        let i = sample();
        let word = encode(&i).unwrap();
        assert_eq!(decode(&word).unwrap(), i);
    }

    #[test]
    fn roundtrip_various() {
        let cases = vec![
            Instruction::new(Opcode::Exit, vec![], vec![]),
            Instruction::new(
                Opcode::Iadd3,
                vec![Operand::Reg(r(0))],
                vec![Operand::Reg(r(1)), Operand::Reg(r(2)), Operand::Reg(r(3))],
            ),
            Instruction::new(
                Opcode::Ffma,
                vec![Operand::Reg(r(10))],
                vec![Operand::Reg(r(1)), Operand::Reg(r(2)), Operand::FImm(2.5)],
            ),
            Instruction::new(
                Opcode::Isetp,
                vec![Operand::Pred(PredReg::new(3).unwrap())],
                vec![Operand::Reg(r(1)), Operand::Imm(-70000)],
            )
            .with_mod(Modifier::Lt)
            .with_mod(Modifier::And),
            Instruction::new(
                Opcode::S2r,
                vec![Operand::Reg(r(5))],
                vec![Operand::SReg(SpecialReg::CtaIdX)],
            ),
            Instruction::new(
                Opcode::Mov,
                vec![Operand::Reg(r(7))],
                vec![Operand::CMem { bank: 0, offset: 0x160 }],
            ),
            Instruction::new(Opcode::Bra, vec![], vec![Operand::Imm(0x12340)]),
        ];
        for i in cases {
            let word = encode(&i).unwrap();
            assert_eq!(decode(&word).unwrap(), i, "roundtrip failed for {i}");
        }
    }

    #[test]
    fn overflow_detected() {
        let too_many_srcs = Instruction::new(
            Opcode::Iadd3,
            vec![Operand::Reg(r(0)), Operand::Reg(r(2))],
            vec![Operand::Imm(1 << 20); 3],
        );
        assert!(matches!(encode(&too_many_srcs), Err(IsaError::EncodingOverflow(_))));

        let huge_imm =
            Instruction::new(Opcode::Mov32i, vec![Operand::Reg(r(0))], vec![Operand::Imm(1 << 40)]);
        assert!(matches!(encode(&huge_imm), Err(IsaError::EncodingOverflow(_))));
    }

    #[test]
    fn dissect_matches_paper_table1() {
        let fields = dissect(&sample());
        let get = |k: &str| fields.iter().find(|(n, _)| *n == k).unwrap().1.clone();
        assert_eq!(get("Wait Mask"), "B0, B1");
        assert_eq!(get("Write Barrier"), "B0");
        assert_eq!(get("Read Barrier"), "B1");
        assert_eq!(get("Predicate"), "P0");
        assert_eq!(get("Opcode"), "LDG");
        assert_eq!(get("Modifiers"), "32");
        assert_eq!(get("Destination Operands"), "R0");
        assert_eq!(get("Source Operands"), "R2, R3");
    }
}
