//! Stall-elimination optimizers (Table 2, upper half).

use super::{Hotspot, MatchResult, Optimizer, OptimizerId};
use crate::advisor::AnalysisCtx;
use crate::blamer::DetailedReason;
use gpa_sampling::StallReason;

fn edge_hotspot(ctx: &AnalysisCtx<'_>, func: usize, e: &crate::blamer::BlamedEdge) -> Hotspot {
    Hotspot {
        def_pc: Some(ctx.pc_of(func, e.def)),
        use_pc: ctx.pc_of(func, e.use_),
        samples: e.stalls,
        distance: Some(e.distance),
    }
}

/// Matches memory-dependency stalls of local-memory instructions —
/// register spills (the Quicksilver register-reuse case).
pub struct RegisterReuse;

impl Optimizer for RegisterReuse {
    fn id(&self) -> OptimizerId {
        OptimizerId::RegisterReuse
    }

    fn hints(&self) -> Vec<&'static str> {
        vec![
            "Local memory loads indicate register spills. Reduce live values per thread.",
            "Split hot loops or functions so fewer values are live across them.",
            "Lower the launch bound or recompute cheap values instead of keeping them live.",
        ]
    }

    fn match_stalls(&self, ctx: &AnalysisCtx<'_>) -> MatchResult {
        let mut m = MatchResult::default();
        for (func, e) in ctx.blamed_edges() {
            if e.detail == DetailedReason::LocalMem {
                m.matched += e.stalls;
                m.matched_latency += e.latency;
                m.hotspots.push(edge_hotspot(ctx, func, e));
            }
        }
        m
    }
}

/// Matches execution-dependency stalls whose source is long-latency
/// arithmetic: FP64, conversions, transcendentals, wide multiplies — the
/// hotspot (type conversion) and ExaTENSOR (integer division) cases.
pub struct StrengthReduction;

impl Optimizer for StrengthReduction {
    fn id(&self) -> OptimizerId {
        OptimizerId::StrengthReduction
    }

    fn hints(&self) -> Vec<&'static str> {
        vec![
            "Avoid integer division. It expands to a special-function sequence; multiply by a reciprocal instead.",
            "Avoid conversion. A double constant multiplied with a 32-bit float promotes the whole expression to 64 bits; write the constant as `2.0f`.",
            "Replace repeated expensive operations with mathematically equivalent cheaper forms.",
        ]
    }

    fn match_stalls(&self, ctx: &AnalysisCtx<'_>) -> MatchResult {
        let mut m = MatchResult::default();
        for (func, e) in ctx.blamed_edges() {
            if e.detail != DetailedReason::Arith {
                continue;
            }
            if !ctx.latency.is_long_latency_arith(ctx.instr(func, e.def)) {
                continue;
            }
            m.matched += e.stalls;
            m.matched_latency += e.latency;
            m.hotspots.push(edge_hotspot(ctx, func, e));
        }
        m
    }
}

/// Matches instruction-fetch stalls in functions too large for the
/// instruction cache (the myocyte function-split case).
pub struct FunctionSplit;

impl Optimizer for FunctionSplit {
    fn id(&self) -> OptimizerId {
        OptimizerId::FunctionSplit
    }

    fn hints(&self) -> Vec<&'static str> {
        vec![
            "The function body exceeds the instruction cache; sequential fetches keep missing.",
            "Split the function (or a huge loop body) into parts so each hot region fits the i-cache.",
        ]
    }

    fn match_stalls(&self, ctx: &AnalysisCtx<'_>) -> MatchResult {
        let mut m = MatchResult::default();
        let icache = ctx.arch.icache_size as u64;
        for f in ctx.structure.functions() {
            if f.end - f.base <= icache / 2 {
                continue;
            }
            for (&pc, st) in ctx.profile.pcs.range(f.base..f.end) {
                let fetch = st.stalls(StallReason::InstructionFetch) as f64;
                if fetch > 0.0 {
                    m.matched += fetch;
                    m.matched_latency += st.latency_stalls(StallReason::InstructionFetch) as f64;
                    m.hotspots.push(Hotspot {
                        def_pc: None,
                        use_pc: pc,
                        samples: fetch,
                        distance: None,
                    });
                }
            }
        }
        m
    }
}

/// Matches stalls inside CUDA math functions (by symbol or inline stack) —
/// the cfd/myocyte/Minimod `--use_fast_math` cases.
pub struct FastMath;

impl Optimizer for FastMath {
    fn id(&self) -> OptimizerId {
        OptimizerId::FastMath
    }

    fn hints(&self) -> Vec<&'static str> {
        vec![
            "Stalls concentrate in precise CUDA math functions.",
            "Compile with --use_fast_math, or call the __func intrinsics directly, if the accuracy loss is acceptable.",
        ]
    }

    fn match_stalls(&self, ctx: &AnalysisCtx<'_>) -> MatchResult {
        let mut m = MatchResult::default();
        for (&pc, st) in &ctx.profile.pcs {
            if !ctx.is_math_pc(pc) {
                continue;
            }
            let stalls = st.total_stalls() as f64;
            if stalls > 0.0 {
                m.matched += stalls;
                m.matched_latency += st.latency_total() as f64;
                m.hotspots.push(Hotspot {
                    def_pc: None,
                    use_pc: pc,
                    samples: stalls,
                    distance: None,
                });
            }
        }
        m
    }
}

/// Matches synchronization stalls blamed on `BAR.SYNC` — unbalanced work
/// across the warps of a block (backprop, huffman, nw, sradv1).
pub struct WarpBalance;

impl Optimizer for WarpBalance {
    fn id(&self) -> OptimizerId {
        OptimizerId::WarpBalance
    }

    fn hints(&self) -> Vec<&'static str> {
        vec![
            "Warps wait long at __syncthreads(): work is unbalanced across the block's warps.",
            "Distribute iterations evenly over warps (e.g. tree-shaped reductions instead of a single working warp).",
            "Remove barriers that protect nothing, or narrow their scope.",
        ]
    }

    fn match_stalls(&self, ctx: &AnalysisCtx<'_>) -> MatchResult {
        let mut m = MatchResult::default();
        for (func, e) in ctx.blamed_edges() {
            if e.detail == DetailedReason::Sync {
                m.matched += e.stalls;
                m.matched_latency += e.latency;
                m.hotspots.push(edge_hotspot(ctx, func, e));
            }
        }
        m
    }
}

/// Matches memory-throttle stalls — too many transactions in flight
/// (the ExaTENSOR constant-memory case).
pub struct MemoryTransactionReduction;

impl Optimizer for MemoryTransactionReduction {
    fn id(&self) -> OptimizerId {
        OptimizerId::MemoryTransactionReduction
    }

    fn hints(&self) -> Vec<&'static str> {
        vec![
            "The LSU queue is saturated: reduce the number of memory transactions.",
            "Coalesce warp accesses into contiguous 32-byte sectors.",
            "Move values shared by all threads and constant during execution into constant memory.",
            "Vectorize loads (e.g. 64/128-bit) where alignment allows.",
        ]
    }

    fn match_stalls(&self, ctx: &AnalysisCtx<'_>) -> MatchResult {
        let mut m = MatchResult::default();
        for (&pc, st) in &ctx.profile.pcs {
            let throttle = st.stalls(StallReason::MemoryThrottle) as f64;
            if throttle > 0.0 {
                m.matched += throttle;
                m.matched_latency += st.latency_stalls(StallReason::MemoryThrottle) as f64;
                m.hotspots.push(Hotspot {
                    def_pc: None,
                    use_pc: pc,
                    samples: throttle,
                    distance: None,
                });
            }
        }
        if m.matched > 0.0 {
            m.notes.push(format!(
                "{} global transactions observed ({} L2 hits, {} misses)",
                ctx.profile.mem_transactions, ctx.profile.l2_hits, ctx.profile.l2_misses
            ));
        }
        m
    }
}
