//! Performance estimators — the paper's Section 5.2.
//!
//! * Stall elimination (Eq. 2): `Se = T / (T − M)`.
//! * Latency hiding (Eq. 4): `Sh = T / (T − min(A, M_L))`, refined per
//!   scope by Eq. 5: only active samples inside the optimized scope (and
//!   its nested scopes) can fill that scope's latency slots. Theorem 5.1:
//!   `Sh ≤ 2`.
//! * Parallel optimization (Eqs. 6–10): change of active warps per
//!   scheduler `CW = W_new / W` and of issue rate via
//!   `I = 1 − (1 − R_I)^W`, combined with an optimizer-specific factor.

/// Eq. 2 — the speedup of removing `matched` of `total` samples.
///
/// Saturates just below `total` so a pathological full match yields a
/// large-but-finite estimate.
pub fn stall_elimination_speedup(total: f64, matched: f64) -> f64 {
    if total <= 0.0 || matched <= 0.0 {
        return 1.0;
    }
    let m = matched.min(total * 0.999);
    total / (total - m)
}

/// Fraction of a matched *uncoalesced* stall that survives coalescing:
/// a perfectly coalesced warp access still performs one transaction, so
/// roughly a sector's worth of latency remains.
pub const COALESCING_RESIDUAL: f64 = 0.25;

/// Fraction of a matched *bank-conflict* stall that survives fixing the
/// conflict: a conflict-free access still pays one bank's service time
/// (1 of up to 32 serialized accesses).
pub const BANK_CONFLICT_RESIDUAL: f64 = 1.0 / 32.0;

/// Eq. 2 with a residual: the speedup of *shrinking* (not removing)
/// `matched` of `total` samples, leaving `residual · matched` behind —
/// the Theorem-5.1-style bound for memory-access rewrites that cannot
/// eliminate the access itself, only its serialization.
///
/// `S = T / (T − (1 − residual) · M)`, so the estimate is always between
/// 1 and the plain [`stall_elimination_speedup`] of the same match.
pub fn residual_elimination_speedup(total: f64, matched: f64, residual: f64) -> f64 {
    if total <= 0.0 || matched <= 0.0 {
        return 1.0;
    }
    let r = residual.clamp(0.0, 1.0);
    let m = (matched * (1.0 - r)).min(total * 0.999);
    total / (total - m)
}

/// The coalescing advisor's estimator: residual elimination with a
/// one-transaction floor ([`COALESCING_RESIDUAL`]).
pub fn coalescing_speedup(total: f64, matched: f64) -> f64 {
    residual_elimination_speedup(total, matched, COALESCING_RESIDUAL)
}

/// The bank-conflict advisor's estimator: residual elimination with a
/// single-bank floor ([`BANK_CONFLICT_RESIDUAL`]).
pub fn bank_conflict_speedup(total: f64, matched: f64) -> f64 {
    residual_elimination_speedup(total, matched, BANK_CONFLICT_RESIDUAL)
}

/// Eq. 4 — latency hiding bounded by the kernel's active samples.
pub fn latency_hiding_speedup(total: f64, active: f64, matched_latency: f64) -> f64 {
    if total <= 0.0 || matched_latency <= 0.0 {
        return 1.0;
    }
    let reducible = active.min(matched_latency).min(total * 0.999);
    total / (total - reducible)
}

/// Eq. 5 — scope-limited latency hiding.
///
/// `scopes` holds `(active samples within the scope, matched latency
/// samples of the scope)` pairs for disjoint innermost scopes;
/// `global_active` caps the total (a sample cannot fill two slots).
pub fn scoped_latency_hiding_speedup(total: f64, global_active: f64, scopes: &[(f64, f64)]) -> f64 {
    if total <= 0.0 {
        return 1.0;
    }
    let per_scope: f64 = scopes.iter().map(|&(a, m)| a.min(m)).sum();
    let matched: f64 = scopes.iter().map(|&(_, m)| m).sum();
    let reducible = per_scope.min(global_active).min(matched).min(total * 0.999);
    if reducible <= 0.0 {
        return 1.0;
    }
    total / (total - reducible)
}

/// Inputs to the parallel-optimization estimator (Eqs. 6–10).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParallelParams {
    /// Active warps per scheduler before (`W`).
    pub w_old: f64,
    /// Active warps per scheduler after (`W_new`).
    pub w_new: f64,
    /// SMs with resident blocks before.
    pub busy_sms_old: f64,
    /// SMs with resident blocks after.
    pub busy_sms_new: f64,
    /// Mean fraction of active lanes per warp before.
    pub lane_eff_old: f64,
    /// Mean fraction of active lanes per warp after.
    pub lane_eff_new: f64,
    /// Optimizer-specific factor `f` of Eq. 10.
    pub factor: f64,
}

/// Eqs. 6–10 — speedup of changing the parallelism level.
///
/// `issue_ratio` is the measured scheduler issue probability (`I` of
/// Eq. 8, with `W = w_old` warps). The per-warp readiness `R_I` is
/// recovered by inverting Eq. 8, then Eq. 9 predicts the new issue rate.
/// Device throughput scales with busy SMs × issue rate; per-warp work
/// scales inversely with lane efficiency.
pub fn parallel_speedup(issue_ratio: f64, p: &ParallelParams) -> f64 {
    let i_old = issue_ratio.clamp(1e-6, 0.999_999);
    let w_old = p.w_old.max(1e-6);
    let w_new = p.w_new.max(1e-6);
    // Invert Eq. 8: R_I = 1 − (1 − I)^(1/W).
    let ri = 1.0 - (1.0 - i_old).powf(1.0 / w_old);
    // Eq. 9.
    let i_new = 1.0 - (1.0 - ri).powf(w_new);
    let thr_old = p.busy_sms_old.max(1e-6) * i_old;
    let thr_new = p.busy_sms_new.max(1e-6) * i_new;
    let lane = (p.lane_eff_new / p.lane_eff_old.max(1e-6)).max(1e-6);
    ((thr_new / thr_old) * lane * p.factor).clamp(0.05, 50.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn eq2_examples() {
        // Removing 5.805% of samples → 1.062× (the Figure 8 headline).
        let s = stall_elimination_speedup(100_000.0, 5_805.0);
        assert!((s - 1.0616).abs() < 1e-3, "got {s}");
        assert_eq!(stall_elimination_speedup(100.0, 0.0), 1.0);
        assert!(stall_elimination_speedup(100.0, 100.0) > 100.0, "saturated, finite");
    }

    #[test]
    fn eq4_bounded_by_active() {
        // A = 10, L = 90, ML = 90: reducible capped at A.
        let s = latency_hiding_speedup(100.0, 10.0, 90.0);
        assert!((s - 100.0 / 90.0).abs() < 1e-9);
    }

    #[test]
    fn eq5_scope_cap() {
        // One loop with few active samples caps its own matched latency.
        let s = scoped_latency_hiding_speedup(100.0, 60.0, &[(5.0, 30.0), (20.0, 10.0)]);
        // reducible = min(5,30) + min(20,10) = 15.
        assert!((s - 100.0 / 85.0).abs() < 1e-9);
    }

    proptest! {
        /// Theorem 5.1: latency-hiding speedups never exceed 2×.
        #[test]
        fn theorem_5_1_upper_bound(active in 0.0f64..1e6, latency in 0.0f64..1e6,
                                   matched in 0.0f64..1e6) {
            let total = active + latency;
            let ml = matched.min(latency); // matched latency samples ⊆ L
            let s = latency_hiding_speedup(total, active, ml);
            prop_assert!(s <= 2.0 + 1e-9, "Sh = {s}");
            prop_assert!(s >= 1.0);
        }

        /// Scoped estimates are never more optimistic than Eq. 4 when the
        /// matched latency is partitioned over the scopes.
        #[test]
        fn scoped_never_exceeds_global(active in 1.0f64..1e6, latency in 1.0f64..1e6,
                                       a1 in 0.0f64..1e5, split in 0.0f64..1.0,
                                       a2 in 0.0f64..1e5, m in 0.0f64..1e6) {
            let total = active + latency;
            let ml = m.min(latency);
            let (m1, m2) = (ml * split, ml * (1.0 - split));
            let scoped = scoped_latency_hiding_speedup(
                total, active, &[(a1.min(active), m1), (a2.min(active), m2)]);
            let global = latency_hiding_speedup(total, active, ml);
            prop_assert!(scoped <= global + 1e-9, "{scoped} > {global}");
            prop_assert!(scoped >= 1.0);
        }

        /// Elimination speedups are finite and at least 1.
        #[test]
        fn elimination_sane(total in 1.0f64..1e9, matched in 0.0f64..1e9) {
            let s = stall_elimination_speedup(total, matched);
            prop_assert!(s >= 1.0 && s.is_finite());
        }

        /// Theorem 5.1, per the paper's bound: whenever the active
        /// samples are at most half the total (`A ≤ T/2`), latency
        /// hiding cannot exceed 2× — for the global estimator (Eq. 4)
        /// and for any scope partition (Eq. 5).
        #[test]
        fn theorem_5_1_when_active_at_most_half(total in 1.0f64..1e9,
                                                active_frac in 0.0f64..0.5,
                                                matched in 0.0f64..1e9,
                                                split in 0.0f64..1.0,
                                                a1_frac in 0.0f64..1.0) {
            let active = total * active_frac;
            let s = latency_hiding_speedup(total, active, matched);
            prop_assert!(s <= 2.0 + 1e-9, "Eq. 4: Sh = {s}");
            let a1 = active * a1_frac;
            let scoped = scoped_latency_hiding_speedup(
                total, active, &[(a1, matched * split), (active - a1, matched * (1.0 - split))]);
            prop_assert!(scoped <= 2.0 + 1e-9, "Eq. 5: Sh = {scoped}");
        }

        /// Every estimator's speedup is at least 1 (fixing an
        /// inefficiency never predicts a slowdown), and at least as much
        /// for the parallel model whenever the proposed configuration
        /// weakly dominates the old one.
        #[test]
        fn all_estimators_at_least_one(total in 1.0f64..1e9, matched in 0.0f64..1e9,
                                       active in 0.0f64..1e9,
                                       a1 in 0.0f64..1e6, m1 in 0.0f64..1e6,
                                       a2 in 0.0f64..1e6, m2 in 0.0f64..1e6,
                                       i in 0.01f64..0.95, w in 1.0f64..16.0,
                                       dw in 0.0f64..8.0, dsm in 0.0f64..64.0,
                                       dlane in 0.0f64..0.5, dfactor in 0.0f64..1.0) {
            prop_assert!(stall_elimination_speedup(total, matched) >= 1.0);
            prop_assert!(latency_hiding_speedup(total, active, matched) >= 1.0);
            prop_assert!(scoped_latency_hiding_speedup(total, active, &[(a1, m1), (a2, m2)]) >= 1.0);
            let p = ParallelParams {
                w_old: w, w_new: w + dw,
                busy_sms_old: 16.0, busy_sms_new: 16.0 + dsm,
                lane_eff_old: 0.5, lane_eff_new: 0.5 + dlane,
                factor: 1.0 + dfactor,
            };
            prop_assert!(parallel_speedup(i, &p) >= 1.0 - 1e-9,
                         "a weakly dominating configuration never predicts a slowdown");
        }

        /// Saturation at full match: the estimators stay finite and
        /// monotone as the matched samples approach (and reach) the
        /// total, instead of diverging at `M = T`.
        #[test]
        fn saturation_at_full_match(total in 1.0f64..1e9, over in 0.0f64..2.0) {
            let full = stall_elimination_speedup(total, total);
            prop_assert!(full.is_finite() && full >= 999.0, "saturated but finite: {full}");
            // Over-matching (M > T, a matcher double-counting) cannot
            // exceed the saturated estimate.
            let overshoot = stall_elimination_speedup(total, total * (1.0 + over));
            prop_assert!(overshoot.is_finite() && (overshoot - full).abs() < 1e-6);
            // Latency hiding saturates at the active bound instead.
            let h = latency_hiding_speedup(total, total, total);
            prop_assert!(h.is_finite() && h >= 999.0);
            // And monotonicity in the matched share holds up to the cap.
            let half = stall_elimination_speedup(total, total * 0.5);
            prop_assert!(half <= full && half >= 1.0);
        }

        /// Residual elimination is sane: `1 ≤ S_res ≤ Se` for any
        /// residual, monotone in the matched share, and degenerates to
        /// Eq. 2 at residual 0 and to 1 at residual 1.
        #[test]
        fn residual_elimination_bounded_by_eq2(total in 1.0f64..1e9, matched in 0.0f64..1e9,
                                               residual in 0.0f64..1.0, grow in 1.0f64..4.0) {
            let s = residual_elimination_speedup(total, matched, residual);
            let se = stall_elimination_speedup(total, matched);
            prop_assert!(s >= 1.0 && s.is_finite());
            prop_assert!(s <= se + 1e-9, "residual {s} exceeds plain elimination {se}");
            prop_assert!(residual_elimination_speedup(total, matched * grow, residual) >= s - 1e-9,
                         "monotone in matched");
            let zero = residual_elimination_speedup(total, matched, 0.0);
            prop_assert!((zero - se).abs() <= 1e-9 * se);
            prop_assert!((residual_elimination_speedup(total, matched, 1.0) - 1.0).abs() < 1e-12);
        }

        /// The memory advisors' concrete estimators satisfy S ≥ 1 and
        /// the residual bound.
        #[test]
        fn memory_estimators_at_least_one(total in 1.0f64..1e9, matched in 0.0f64..1e9) {
            for s in [coalescing_speedup(total, matched), bank_conflict_speedup(total, matched)] {
                prop_assert!(s >= 1.0 && s.is_finite());
                prop_assert!(s <= stall_elimination_speedup(total, matched) + 1e-9);
            }
            // The bank-conflict residual is smaller, so its estimate for
            // the same match is at least the coalescing one.
            prop_assert!(bank_conflict_speedup(total, matched)
                         >= coalescing_speedup(total, matched) - 1e-9);
        }

        /// More warps never predict a slowdown (all else equal).
        #[test]
        fn parallel_monotone_in_warps(i in 0.01f64..0.95, w in 1.0f64..16.0, dw in 0.0f64..8.0) {
            let base = ParallelParams {
                w_old: w, w_new: w, busy_sms_old: 10.0, busy_sms_new: 10.0,
                lane_eff_old: 1.0, lane_eff_new: 1.0, factor: 1.0,
            };
            let same = parallel_speedup(i, &base);
            let more = parallel_speedup(i, &ParallelParams { w_new: w + dw, ..base });
            prop_assert!((same - 1.0).abs() < 1e-6);
            prop_assert!(more >= same - 1e-9);
        }
    }

    #[test]
    fn parallel_block_increase_example() {
        // PeleC-like: 16 blocks on 80 SMs → 32 blocks: busy SMs double but
        // warps per scheduler halve; the net gain depends on saturation.
        let p = ParallelParams {
            w_old: 8.0,
            w_new: 4.0,
            busy_sms_old: 16.0,
            busy_sms_new: 32.0,
            lane_eff_old: 1.0,
            lane_eff_new: 1.0,
            factor: 1.0,
        };
        let s = parallel_speedup(0.4, &p);
        assert!(s > 1.0 && s < 2.0, "moderate gain, got {s}");
    }
}
