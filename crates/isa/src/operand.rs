//! Instruction operands.

use crate::register::{PredReg, Register, SpecialReg};
use std::fmt;

/// A memory reference `[Rbase(+hi) + offset]`.
///
/// `wide` references address a 64-bit space: the effective address is the
/// 64-bit value held in the pair `(base, base+1)` plus `offset`. Narrow
/// references (shared/local) use the single 32-bit `base` register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Base address register (low half of the pair when `wide`).
    pub base: Register,
    /// Byte offset added to the base.
    pub offset: i32,
    /// Whether the base is a 64-bit register pair.
    pub wide: bool,
}

impl MemRef {
    /// Registers read to form the address.
    pub fn addr_regs(&self) -> impl Iterator<Item = Register> {
        let hi = if self.wide { Some(self.base.pair_hi()) } else { None };
        std::iter::once(self.base).chain(hi)
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        if self.wide {
            write!(f, "{}:{}", self.base, self.base.pair_hi())?;
        } else {
            write!(f, "{}", self.base)?;
        }
        if self.offset != 0 {
            if self.offset > 0 {
                write!(f, "+{:#x}", self.offset)?;
            } else {
                write!(f, "-{:#x}", -(self.offset as i64))?;
            }
        }
        write!(f, "]")
    }
}

/// An instruction operand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand {
    /// A 32-bit register.
    Reg(Register),
    /// A 64-bit value in the consecutive pair `(r, r+1)`, written `R2:R3`.
    RegPair(Register),
    /// A predicate register (destination of `ISETP`, source of `SEL`, ...).
    Pred(PredReg),
    /// A 32-bit integer immediate.
    Imm(i64),
    /// A floating-point immediate (stored as `f64`, encoded as `f32` bits).
    FImm(f64),
    /// A special register (only as `S2R` source).
    SReg(SpecialReg),
    /// A constant-bank scalar `c[bank][offset]`.
    CMem {
        /// Constant bank index (0–15).
        bank: u8,
        /// Byte offset inside the bank.
        offset: u16,
    },
    /// A memory reference (load source / store destination).
    Mem(MemRef),
}

impl Operand {
    /// General-purpose registers read when this operand appears as a source.
    pub fn src_regs(&self) -> Vec<Register> {
        match *self {
            Operand::Reg(r) => vec![r],
            Operand::RegPair(r) => vec![r, r.pair_hi()],
            Operand::Mem(m) => m.addr_regs().collect(),
            _ => Vec::new(),
        }
    }

    /// General-purpose registers written when this operand is a destination.
    pub fn dst_regs(&self) -> Vec<Register> {
        match *self {
            Operand::Reg(r) => vec![r],
            Operand::RegPair(r) => vec![r, r.pair_hi()],
            _ => Vec::new(),
        }
    }

    /// The predicate register, if this is a predicate operand.
    pub fn pred(&self) -> Option<PredReg> {
        match *self {
            Operand::Pred(p) => Some(p),
            _ => None,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::RegPair(r) => write!(f, "{}:{}", r, r.pair_hi()),
            Operand::Pred(p) => write!(f, "{p}"),
            Operand::Imm(v) => {
                if (-4096..=4096).contains(&v) {
                    write!(f, "{v}")
                } else if v >= 0 {
                    write!(f, "{v:#x}")
                } else {
                    write!(f, "-{:#x}", -v)
                }
            }
            Operand::FImm(v) => {
                if v == v.trunc() && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Operand::SReg(s) => write!(f, "{s}"),
            Operand::CMem { bank, offset } => write!(f, "c[{bank}][{offset:#x}]"),
            Operand::Mem(m) => write!(f, "{m}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memref_display_and_regs() {
        let m = MemRef { base: Register::from_u8(2), offset: 16, wide: true };
        assert_eq!(m.to_string(), "[R2:R3+0x10]");
        assert_eq!(m.addr_regs().collect::<Vec<_>>().len(), 2);

        let n = MemRef { base: Register::from_u8(7), offset: -4, wide: false };
        assert_eq!(n.to_string(), "[R7-0x4]");
        assert_eq!(n.addr_regs().collect::<Vec<_>>().len(), 1);

        let z = MemRef { base: Register::from_u8(9), offset: 0, wide: false };
        assert_eq!(z.to_string(), "[R9]");
    }

    #[test]
    fn operand_reg_sets() {
        let pair = Operand::RegPair(Register::from_u8(4));
        assert_eq!(pair.dst_regs(), vec![Register::from_u8(4), Register::from_u8(5)]);
        let imm = Operand::Imm(42);
        assert!(imm.src_regs().is_empty());
        assert_eq!(imm.to_string(), "42");
        assert_eq!(Operand::Imm(65536).to_string(), "0x10000");
        assert_eq!(Operand::FImm(2.0).to_string(), "2.0");
    }
}
