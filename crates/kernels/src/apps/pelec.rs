//! `PeleC` — `pc_expl_reactions`.
//!
//! The reaction kernel occupies only a fraction of the device's SMs. GPA
//! suggests raising the block count; the gain is tempered by per-cell
//! work imbalance (stiff cells integrate more sub-steps), which is why
//! the paper sees 1.19× (estimated 1.23×) rather than the ideal 2×.

use crate::data::ParamBlock;
use crate::dsl::Asm;
use crate::{App, KernelSpec, Params, Stage};
use gpa_arch::LaunchConfig;

/// Builds the PeleC app entry.
pub fn app() -> App {
    App {
        name: "PeleC",
        kernel: "pc_expl_reactions",
        stages: vec![Stage { name: "Block Increase", optimizer: "GPUBlockIncreaseOptimizer" }],
        build,
    }
}

fn build(variant: usize, p: &Params) -> KernelSpec {
    let mut a = Asm::module("pelec");
    a.kernel("pc_expl_reactions");
    a.line("PeleC_reactions.cpp", 210);
    a.global_tid();
    a.param_u64(4, 0); // species state
    a.addr(6, 4, 0, 2);
    a.i("LDG.E.32 R8, [R6:R7] {W:B0, S:1}");
    // Stiff cells are spatially clustered: the first 512 cells integrate
    // 6x more sub-steps (they land in one block of the baseline launch).
    a.i("ISETP.LT.AND P0, R0, 512 {S:2}");
    a.i("MOV32I R16, 8 {S:1}");
    a.i("@P0 MOV32I R16, 48 {S:1}");
    a.i("MOV32I R17, 0 {S:1}");
    a.i("MOV R22, R8 {WT:[B0], S:2}");
    a.line("PeleC_reactions.cpp", 218);
    a.label("substep");
    // Arrhenius-ish update: chained FMA with one SFU exp per sub-step.
    a.i("FMUL R24, R22, -0.37 {S:4}");
    a.i("MUFU.EX2 R26, R24 {W:B1, S:1}");
    a.i("FFMA R22, R26, 0.92, R22 {WT:[B1], S:4}");
    a.i("FFMA R22, R22, 0.999, 0.0001 {S:4}");
    a.i("IADD R17, R17, 1 {S:4}");
    a.i("ISETP.LT.AND P1, R17, R16 {S:2}");
    a.i("@P1 BRA substep {S:5}");
    a.param_u64(28, 8);
    a.addr(30, 28, 0, 2);
    a.i("STG.E.32 [R30:R31], R22 {R:B5, S:2}");
    a.i("EXIT {WT:[B5], S:1}");
    a.endfunc();
    let module = a.build();

    // Baseline: half the SMs busy; optimized: all of them.
    let base_blocks = (p.sms / 2).max(1);
    let (blocks, threads) = if variant >= 1 { (base_blocks * 2, 256) } else { (base_blocks, 512) };
    let n = blocks * threads;
    KernelSpec {
        module,
        entry: "pc_expl_reactions".into(),
        launch: LaunchConfig::new(blocks, threads),
        setup: Box::new(move |gpu| {
            let mut rng = crate::data::rng(0x5057_0010);
            let state = gpu.global_mut().alloc(4 * n as u64);
            gpu.global_mut()
                .write_bytes(state, &crate::data::f32_bytes(&mut rng, n as usize, 0.1, 1.0));
            let out = gpu.global_mut().alloc(4 * n as u64);
            let mut pb = ParamBlock::new();
            pb.push_u64(state);
            pb.push_u64(out);
            pb.finish()
        }),
        const_bank1: None,
    }
}
