//! `rodinia/heartwall` — `kernel`.
//!
//! The tracking kernel's correlation loop folds every sample into one
//! accumulator right after loading it; unrolling by two overlaps loads
//! and splits the chain (Loop Unrolling; paper: 1.16× achieved, 1.15×
//! estimated).

use crate::data::ParamBlock;
use crate::dsl::Asm;
use crate::{App, KernelSpec, Params, Stage};
use gpa_arch::LaunchConfig;

/// Builds the heartwall app entry.
pub fn app() -> App {
    App {
        name: "rodinia/heartwall",
        kernel: "kernel",
        stages: vec![Stage { name: "Loop Unrolling", optimizer: "GPULoopUnrollOptimizer" }],
        build,
    }
}

const WINDOW: u32 = 64;

fn build(variant: usize, p: &Params) -> KernelSpec {
    let unrolled = variant >= 1;
    let mut a = Asm::module("heartwall");
    a.kernel("kernel");
    a.line("heartwall.cu", 205);
    a.global_tid();
    a.param_u64(4, 0); // frame
    a.param_u64(6, 8); // template
    a.i("MOV32I R22, 0 {S:1}"); // acc
    a.i("MOV32I R17, 0 {S:1}"); // k
    a.line("heartwall.cu", 210);
    a.label("win_loop");
    if unrolled {
        for u in 0..2u8 {
            a.i(format!("IADD R10, R17, {u} {{S:4}}"));
            a.i(format!("IMAD R10, R10, {WINDOW}, R0 {{S:5}}"));
            a.addr(12, 4, 10, 2);
            a.i(format!("LDG.E.32 R{}, [R12:R13] {{W:B{u}, S:1}}", 40 + 2 * u));
            a.i(format!("IADD R11, R17, {u} {{S:4}}"));
            a.addr(14, 6, 11, 2);
            a.i(format!("LDG.E.32 R{}, [R14:R15] {{W:B{}, S:1}}", 44 + 2 * u, 2 + u));
        }
        let accs = [22u8, 26];
        for (u, &acc) in accs.iter().enumerate() {
            // |frame - template| accumulated (SAD).
            a.i(format!(
                "FFMA R30, R{}, -1.0, R{} {{WT:[B{},B{}], S:4}}",
                44 + 2 * u,
                40 + 2 * u,
                u,
                2 + u
            ));
            a.i("LOP3.AND R30, R30, 0x7fffffff {S:4}");
            a.i(format!("FADD R{acc}, R{acc}, R30 {{S:4}}"));
        }
        a.i("IADD R17, R17, 2 {S:4}");
        a.i(format!("ISETP.LT.AND P1, R17, {WINDOW} {{S:2}}"));
        a.i("@P1 BRA win_loop {S:5}");
        a.i("FADD R22, R22, R26 {S:4}");
    } else {
        a.i(format!("IMAD R10, R17, {WINDOW}, R0 {{S:5}}"));
        a.addr(12, 4, 10, 2);
        a.i("LDG.E.32 R14, [R12:R13] {W:B0, S:1}");
        a.addr(18, 6, 17, 2);
        a.i("LDG.E.32 R20, [R18:R19] {W:B1, S:1}");
        a.i("FFMA R30, R20, -1.0, R14 {WT:[B0,B1], S:4}");
        a.i("LOP3.AND R30, R30, 0x7fffffff {S:4}");
        a.i("FADD R22, R22, R30 {S:4}"); // serial SAD accumulator
        a.i("IADD R17, R17, 1 {S:4}");
        a.i(format!("ISETP.LT.AND P1, R17, {WINDOW} {{S:2}}"));
        a.i("@P1 BRA win_loop {S:5}");
    }
    a.param_u64(26, 16);
    a.addr(36, 26, 0, 2);
    a.i("STG.E.32 [R36:R37], R22 {R:B5, S:2}");
    a.i("EXIT {WT:[B5], S:1}");
    a.endfunc();
    let module = a.build();

    let blocks = p.sms * p.scale;
    let threads: u32 = 256;
    let n = blocks * threads;
    KernelSpec {
        module,
        entry: "kernel".into(),
        launch: LaunchConfig::new(blocks, threads),
        setup: Box::new(move |gpu| {
            let mut rng = crate::data::rng(0x5057_0007);
            let frame = gpu.global_mut().alloc(4 * (n as u64 + (WINDOW * WINDOW) as u64));
            gpu.global_mut().write_bytes(
                frame,
                &crate::data::f32_bytes(&mut rng, (n + WINDOW * WINDOW) as usize, 0.0, 255.0),
            );
            let tmpl = gpu.global_mut().alloc(4 * (n as u64 + WINDOW as u64));
            gpu.global_mut().write_bytes(
                tmpl,
                &crate::data::f32_bytes(&mut rng, (n + WINDOW) as usize, 0.0, 255.0),
            );
            let out = gpu.global_mut().alloc(4 * n as u64);
            let mut pb = ParamBlock::new();
            pb.push_u64(frame);
            pb.push_u64(tmpl);
            pb.push_u64(out);
            pb.finish()
        }),
        const_bank1: None,
    }
}
