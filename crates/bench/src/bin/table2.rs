//! Reproduces **Table 2**: the optimizer catalog — name, category, and
//! what each optimizer matches.

use gpa_core::optimizers::OptimizerRegistry;

fn main() {
    println!("Table 2 — GPU optimizers in GPA\n");
    println!("{:<45} {:<20} first hint", "Optimizer", "Category");
    println!("{}", "-".repeat(110));
    for opt in OptimizerRegistry::full().iter() {
        let hints = opt.hints();
        println!(
            "{:<45} {:<20} {}",
            opt.id().name(),
            opt.id().category().to_string(),
            hints.first().copied().unwrap_or("")
        );
    }
}
