//! Static analysis of a hand-written kernel: parse assembly, inspect the
//! 128-bit encoding (the paper's Table 1), recover the CFG and loop nest,
//! and query def→use distances — the raw material of the blamer.
//!
//! ```sh
//! cargo run --example custom_kernel_asm
//! ```

use gpa::cfg::{Cfg, LoopForest};
use gpa::isa::{decode, dissect, encode, parse_module, Slot};
use gpa::structure::ProgramStructure;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = parse_module(
        r#"
.module custom
.kernel saxpy_strided
.line saxpy.cu 3
  S2R R0, SR_TID.X {W:B0, S:1}
  MOV R2, c[0][0] {S:1}
  MOV R3, c[0][4] {S:1}
  SHL R1, R0, 2 {WT:[B0], S:2}
  IADD R2:R3, R2:R3, R1 {S:2}
  MOV32I R8, 0 {S:1}
.line saxpy.cu 6
top:
  @P0 LDG.E.32 R4, [R2:R3] {W:B1, S:1}
  @!P0 LDC.32 R4, c[0][16] {W:B1, S:1}
  FFMA R5, R4, 2.5, R5 {WT:[B1], S:4}
  IADD R2:R3, R2:R3, 128 {S:2}
  IADD R8, R8, 1 {S:4}
  ISETP.LT.AND P1, R8, 16 {S:2}
  @P1 BRA top {S:5}
  STG.E.32 [R2:R3], R5 {R:B2, S:1}
  EXIT {WT:[B2], S:1}
.endfunc
"#,
    )?;
    let f = module.function("saxpy_strided").unwrap();

    // Binary encoding round-trip and field dissection.
    let ldg = &f.instrs[6];
    let word = encode(ldg)?;
    assert_eq!(&decode(&word)?, ldg);
    println!("instruction: {ldg}");
    for (field, value) in dissect(ldg) {
        println!("  {field:<22} {value}");
    }

    // CFG and loop nest (what Dyninst provides in the paper).
    let cfg = Cfg::build(f);
    let loops = LoopForest::build(&cfg);
    println!("\nCFG: {} basic blocks, {} loops", cfg.blocks().len(), loops.loops().len());
    for l in loops.loops() {
        println!("  loop header at instruction {}", cfg.block(l.header).start);
    }

    // def→use paths: the FFMA at 8 consumes R4 from both predicated loads.
    let defs = gpa::core::blamer::slice::immediate_defs(
        f,
        &cfg,
        8,
        Slot::Reg(gpa::isa::Register::from_u8(4)),
    );
    println!("\nimmediate defs of R4 at instruction 8: {defs:?} (both predicated loads)");
    for d in defs {
        let min = cfg.min_instrs_between(d, 8).unwrap();
        let max = cfg.max_instrs_between(d, 8).unwrap();
        println!("  def {d}: between {min} and {max} instructions to the use");
    }

    // Program structure: scopes and source lines.
    let s = ProgramStructure::build(&module);
    let pc = f.pc_of(8);
    let (file, line) = s.source_of(&module, pc).unwrap();
    println!(
        "\ninstruction 8 maps to {file}:{line}, scope: {}",
        s.describe_scope(&module, s.scope_of(pc).unwrap())
    );
    Ok(())
}
