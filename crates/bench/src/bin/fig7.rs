//! Reproduces **Figure 7**: single-dependency coverage before and after
//! pruning cold edges, per Rodinia benchmark.

use gpa_arch::LatencyTable;
use gpa_core::blamer::single_dependency_coverage;
use gpa_core::ModuleBlame;
use gpa_kernels::runner::{arch_for, run_spec};
use gpa_kernels::{apps, Params};
use gpa_structure::ProgramStructure;

fn main() {
    let p = Params::full();
    let arch = arch_for(&p);
    println!("Figure 7 — single dependency coverage before/after pruning\n");
    println!("{:<26} {:>8} {:>8} {:>7}", "benchmark", "before", "after", "nodes");
    println!("{}", "-".repeat(55));
    let mut sum_after = 0.0;
    let mut n = 0;
    for app in apps::rodinia_apps() {
        let spec = (app.build)(0, &p);
        let run = match run_spec(&spec, &arch) {
            Ok(r) => r,
            Err(e) => {
                println!("{:<26} error: {e}", app.name);
                continue;
            }
        };
        let structure = ProgramStructure::build(&spec.module);
        let blame = ModuleBlame::build(
            &spec.module,
            &structure,
            &run.profile,
            &LatencyTable::for_arch(&arch),
        );
        let cov = single_dependency_coverage(&blame);
        println!(
            "{:<26} {:>8.2} {:>8.2} {:>7}",
            app.name.trim_start_matches("rodinia/"),
            cov.before,
            cov.after,
            cov.nodes
        );
        sum_after += cov.after;
        n += 1;
    }
    println!("{}", "-".repeat(55));
    println!("mean after-pruning coverage: {:.2} (paper: most benchmarks > 0.8)", sum_after / n as f64);
}
