//! Dependency graph construction, cold-edge pruning, and Eq. 1
//! apportioning (paper Figures 4b–4d).

use super::slice::{immediate_defs, nearest_barriers};
use super::{DetailedReason, FunctionBlame};
use gpa_arch::LatencyTable;
use gpa_cfg::{Cfg, Dominators};
use gpa_isa::{Function, Module, Slot};
use gpa_sampling::{KernelProfile, PcStats, StallReason};
use gpa_structure::FunctionInfo;
use std::collections::BTreeMap;

/// Which rule removed a cold edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneRule {
    /// Stall reason and source opcode are incompatible (rule 1).
    Opcode,
    /// An unpredicated re-reader sits on every def→use path (rule 2).
    Dominator,
    /// Every path is longer than the source's latency (rule 3).
    Latency,
}

/// One def→use edge of the dependency graph.
#[derive(Debug, Clone, PartialEq)]
pub struct DepEdge {
    /// Definition instruction index.
    pub def: usize,
    /// Stalled use instruction index.
    pub use_: usize,
    /// Slots carrying the dependency (empty for synchronization edges).
    pub slots: Vec<Slot>,
    /// Figure 5 classification by the source opcode.
    pub detail: DetailedReason,
    /// Why the edge was pruned, if it was.
    pub pruned: Option<PruneRule>,
}

/// The instruction dependency graph of one function.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DepGraph {
    /// Instructions with attributable stalls (graph nodes).
    pub nodes: Vec<usize>,
    /// All discovered edges, pruned ones flagged.
    pub edges: Vec<DepEdge>,
}

impl DepGraph {
    /// Incoming edges of `node`, optionally skipping pruned ones.
    pub fn incoming(&self, node: usize, include_pruned: bool) -> Vec<&DepEdge> {
        self.edges
            .iter()
            .filter(|e| e.use_ == node && (include_pruned || e.pruned.is_none()))
            .collect()
    }
}

/// Blame apportioned to one surviving edge (Eq. 1).
#[derive(Debug, Clone, PartialEq)]
pub struct BlamedEdge {
    /// Definition (blamed) instruction index.
    pub def: usize,
    /// Stalled use instruction index.
    pub use_: usize,
    /// Figure 5 classification.
    pub detail: DetailedReason,
    /// Apportioned stall samples.
    pub stalls: f64,
    /// Apportioned latency samples (scheduler-idle stalls).
    pub latency: f64,
    /// Shortest def→use distance in instructions (1 = adjacent).
    pub distance: u32,
}

/// The attributable stall reasons.
const REASONS: [StallReason; 3] =
    [StallReason::MemoryDependency, StallReason::ExecutionDependency, StallReason::Synchronization];

/// Runs the blame pipeline for one function.
pub fn blame_function(
    module: &Module,
    finfo: &FunctionInfo,
    profile: &KernelProfile,
    latency: &LatencyTable,
) -> FunctionBlame {
    let f = &module.functions[finfo.index];
    let cfg = &finfo.cfg;
    let empty = PcStats::default();
    let stats_of = |idx: usize| -> &PcStats { profile.pc(f.pc_of(idx)).unwrap_or(&empty) };

    // Nodes: instructions with attributable stalls.
    let nodes: Vec<usize> = (0..f.instrs.len())
        .filter(|&i| REASONS.iter().any(|&r| stats_of(i).stalls(r) > 0))
        .collect();
    if nodes.is_empty() {
        return FunctionBlame {
            func: finfo.index,
            graph: DepGraph::default(),
            edges: Vec::new(),
            unattributed: Vec::new(),
        };
    }
    let dom = Dominators::build(cfg);

    // Build raw edges from backward slicing.
    let mut edges: Vec<DepEdge> = Vec::new();
    for &j in &nodes {
        let mut by_def: BTreeMap<usize, Vec<Slot>> = BTreeMap::new();
        let mut slots: Vec<Slot> = f.instrs[j].uses();
        slots.sort_unstable();
        slots.dedup();
        for slot in slots {
            for d in immediate_defs(f, cfg, j, slot) {
                by_def.entry(d).or_default().push(slot);
            }
        }
        for (d, slots) in by_def {
            let detail = DetailedReason::of_def(f.instrs[d].opcode);
            edges.push(DepEdge { def: d, use_: j, slots, detail, pruned: None });
        }
        if stats_of(j).stalls(StallReason::Synchronization) > 0 {
            for b in nearest_barriers(f, cfg, j) {
                edges.push(DepEdge {
                    def: b,
                    use_: j,
                    slots: Vec::new(),
                    detail: DetailedReason::Sync,
                    pruned: None,
                });
            }
        }
    }

    // Pruning rules.
    prune(f, cfg, latency, &mut edges, &stats_of);

    // Apportioning.
    let mut blamed: Vec<BlamedEdge> = Vec::new();
    let mut unattributed: Vec<(usize, StallReason, f64, f64)> = Vec::new();
    for &j in &nodes {
        let st = stats_of(j);
        for &r in &REASONS {
            let stalls = st.stalls(r) as f64;
            let lat_stalls = st.latency_stalls(r) as f64;
            if stalls == 0.0 && lat_stalls == 0.0 {
                continue;
            }
            let live: Vec<&DepEdge> = edges
                .iter()
                .filter(|e| e.use_ == j && e.pruned.is_none() && e.detail.base() == r)
                .collect();
            if live.is_empty() {
                unattributed.push((j, r, stalls, lat_stalls));
                continue;
            }
            // Eq. 1 weights: R_issue × R_path, with R_path = 1 / longest
            // path ("the longer the path, the less stalls are blamed").
            let weights: Vec<f64> = live
                .iter()
                .map(|e| {
                    let issued = stats_of(e.def).issued_samples().max(1) as f64;
                    let path =
                        cfg.max_instrs_between_with(&dom, e.def, j).map_or(1.0, |p| (p + 1) as f64);
                    issued / path
                })
                .collect();
            let total: f64 = weights.iter().sum();
            for (e, w) in live.iter().zip(weights.iter()) {
                let share = w / total;
                blamed.push(BlamedEdge {
                    def: e.def,
                    use_: e.use_,
                    detail: e.detail,
                    stalls: stalls * share,
                    latency: lat_stalls * share,
                    distance: cfg.min_instrs_between(e.def, j).map_or(1, |d| d + 1),
                });
            }
        }
    }

    FunctionBlame {
        func: finfo.index,
        graph: DepGraph { nodes, edges },
        edges: blamed,
        unattributed,
    }
}

fn prune<'p>(
    f: &Function,
    cfg: &Cfg,
    latency: &LatencyTable,
    edges: &mut [DepEdge],
    stats_of: &dyn Fn(usize) -> &'p PcStats,
) {
    // Rule 2 needs: unpredicated instructions using each slot.
    let mut users: BTreeMap<Slot, Vec<usize>> = BTreeMap::new();
    for (i, instr) in f.instrs.iter().enumerate() {
        if instr.pred.is_some_and(|p| !p.always()) {
            continue;
        }
        for s in instr.uses() {
            users.entry(s).or_default().push(i);
        }
    }
    for e in edges.iter_mut() {
        if e.detail == DetailedReason::Sync {
            continue; // synchronization edges carry no slots
        }
        // Rule 1: opcode-based. The edge's reason class must actually be
        // observed at the stalled node.
        let observed = stats_of(e.use_).stalls(e.detail.base()) > 0
            || stats_of(e.use_).latency_stalls(e.detail.base()) > 0;
        if !observed {
            e.pruned = Some(PruneRule::Opcode);
            continue;
        }
        // Rule 2: dominator-based. A non-predicated re-reader of the same
        // slot on every def→use path would have absorbed the stall.
        let dominated = e.slots.iter().any(|s| {
            users.get(s).is_some_and(|ks| {
                ks.iter().any(|&k| k != e.def && k != e.use_ && cfg.on_every_path(e.def, k, e.use_))
            })
        });
        if dominated {
            e.pruned = Some(PruneRule::Dominator);
            continue;
        }
        // Rule 3: latency-based. If even the shortest path outlives the
        // source's (upper-bound) latency, the stall cannot come from it.
        let min_path = cfg.min_instrs_between(e.def, e.use_);
        let bound = latency.upper_bound(&f.instrs[e.def]);
        if min_path.is_some_and(|p| p > bound) {
            e.pruned = Some(PruneRule::Latency);
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use gpa_arch::{ArchConfig, LaunchConfig};
    use gpa_sampling::RawSample;
    use gpa_sim::{LaunchResult, SampleSet};
    use gpa_structure::ProgramStructure;

    /// Builds a fake profile from `(pc, reason, active, count)` tuples.
    pub(crate) fn fake_profile(entries: &[(u64, StallReason, bool, u32)]) -> KernelProfile {
        let mut samples = Vec::new();
        for &(pc, stall, active, count) in entries {
            for _ in 0..count {
                samples.push(RawSample {
                    sm: 0,
                    scheduler: 0,
                    cycle: 0,
                    pc,
                    stall,
                    scheduler_active: active,
                });
            }
        }
        let arch = ArchConfig::small(1);
        let launch = LaunchConfig::new(1, 32);
        let result = LaunchResult {
            cycles: 1000,
            issued: 100,
            samples: SampleSet::from_raw(&samples),
            issue_counts: Default::default(),
            mem_transactions: 0,
            l2_hits: 0,
            l2_misses: 0,
            icache_misses: 0,
            occupancy: arch.occupancy(&launch),
            launch,
            sm_stats: vec![],
        };
        KernelProfile::from_launch("k", "m", "volta", 509, &result)
    }

    /// The paper's Figure 4 scenario, laid out so that the LDC→IADD
    /// longest path is twice the LDG→IADD one:
    ///
    /// ```text
    /// ISETP
    /// @!P0 LDC  R0      (idx 1)   issued 2
    /// 4 fillers
    /// @P0  LDG  R0      (idx 6)   issued 1
    /// 4 fillers
    /// IMAD R6 (uses R0? no — defines R6)        — extra def below
    /// IADD R8, R0, R7   (idx 12)  4 memory-dependency stalls
    /// ```
    fn figure4_module() -> (gpa_isa::Module, KernelProfile) {
        let src = r#"
.module fig4
.kernel k
  ISETP.LT.AND P0, R4, R5 {S:2}
  @!P0 LDC.32 R0, [R4] {W:B0, S:1}
  IADD R20, R20, 1 {S:4}
  IADD R21, R21, 1 {S:4}
  IADD R22, R22, 1 {S:4}
  IADD R23, R23, 1 {S:4}
  @P0 LDG.E.32 R0, [R2:R3] {W:B0, S:1}
  IADD R24, R24, 1 {S:4}
  IADD R25, R25, 1 {S:4}
  IADD R26, R26, 1 {S:4}
  IADD R27, R27, 1 {S:4}
  IMAD R7, R4, R5, R7 {S:5}
  IADD R8, R0, R7 {WT:[B0], S:4}
  EXIT
.endfunc
"#;
        let m = gpa_isa::parse_module(src).unwrap();
        let f = m.function("k").unwrap();
        let profile = fake_profile(&[
            (f.pc_of(12), StallReason::MemoryDependency, false, 4),
            (f.pc_of(1), StallReason::Selected, true, 2), // LDC issued twice
            (f.pc_of(6), StallReason::Selected, true, 1), // LDG issued once
            (f.pc_of(11), StallReason::Selected, true, 1),
        ]);
        (m, profile)
    }

    #[test]
    fn figure4_prune_and_apportion() {
        let (m, profile) = figure4_module();
        let structure = ProgramStructure::build(&m);
        let lat = LatencyTable::default();
        let fb = blame_function(&m, &structure.functions()[0], &profile, &lat);

        // The graph has edges from LDC (1), LDG (6), and IMAD (11) to the
        // stalled IADD (12) — plus the ISETP predicate edge for the loads.
        let incoming = fb.graph.incoming(12, true);
        let defs: Vec<usize> = incoming.iter().map(|e| e.def).collect();
        assert!(defs.contains(&1) && defs.contains(&6) && defs.contains(&11), "{defs:?}");

        // Opcode pruning removes the IMAD edge (it would cause an
        // execution dependency, but only memory-dependency stalls were
        // observed).
        let imad = incoming.iter().find(|e| e.def == 11).unwrap();
        assert_eq!(imad.pruned, Some(PruneRule::Opcode));

        // Eq. 1: LDC has 2× the issued samples but 2× the path length —
        // the four stalls split evenly, two each.
        let ldc = fb.edges.iter().find(|e| e.def == 1).expect("LDC blamed");
        let ldg = fb.edges.iter().find(|e| e.def == 6).expect("LDG blamed");
        assert_eq!(ldc.detail, DetailedReason::ConstMem);
        assert_eq!(ldg.detail, DetailedReason::GlobalMem);
        let total = ldc.stalls + ldg.stalls;
        assert!((total - 4.0).abs() < 1e-9, "blame conserves stalls");
        assert!(
            (ldc.stalls - ldg.stalls).abs() < 0.35,
            "issue ratio 2:1 cancels path ratio 10:5: {} vs {}",
            ldc.stalls,
            ldg.stalls
        );
    }

    #[test]
    fn latency_rule_prunes_distant_arith_def() {
        // An IADD def 20+ instructions before its use cannot cause a
        // 4-cycle-latency stall.
        let mut src = String::from(".kernel k\n  IADD R1, R2, R3 {S:4}\n");
        for i in 0..20 {
            src.push_str(&format!("  IADD R{}, R{}, 1 {{S:4}}\n", 10 + i % 5, 10 + i % 5));
        }
        src.push_str("  IADD R0, R1, R1 {S:4}\n  EXIT\n.endfunc\n");
        let m = gpa_isa::parse_module(&src).unwrap();
        let f = m.function("k").unwrap();
        let use_idx = 21;
        let profile =
            fake_profile(&[(f.pc_of(use_idx), StallReason::ExecutionDependency, false, 3)]);
        let structure = ProgramStructure::build(&m);
        let fb = blame_function(&m, &structure.functions()[0], &profile, &LatencyTable::default());
        let edge = fb
            .graph
            .edges
            .iter()
            .find(|e| e.def == 0 && e.use_ == use_idx)
            .expect("slicing finds the def");
        assert_eq!(edge.pruned, Some(PruneRule::Latency));
        // With the only candidate pruned, the stalls are unattributed.
        assert!(fb.unattributed.iter().any(|&(j, r, s, _)| j == use_idx
            && r == StallReason::ExecutionDependency
            && s == 3.0));
    }

    #[test]
    fn dominator_rule_prunes_absorbed_edge() {
        // k (idx 2) re-reads R1 unpredicated between def (0) and use (3):
        // stalls would have shown at k, so the 0→3 edge is cold.
        let src = r#"
.kernel k
  LDG.E.32 R1, [R2:R3] {W:B0, S:1}
  IADD R9, R9, 1 {S:4}
  IADD R5, R1, 1 {WT:[B0], S:4}
  IADD R6, R1, 2 {S:4}
  EXIT
.endfunc
"#;
        let m = gpa_isa::parse_module(src).unwrap();
        let f = m.function("k").unwrap();
        let profile = fake_profile(&[(f.pc_of(3), StallReason::MemoryDependency, false, 2)]);
        let structure = ProgramStructure::build(&m);
        let fb = blame_function(&m, &structure.functions()[0], &profile, &LatencyTable::default());
        let edge = fb.graph.edges.iter().find(|e| e.def == 0 && e.use_ == 3).unwrap();
        assert_eq!(edge.pruned, Some(PruneRule::Dominator));
    }

    #[test]
    fn sync_stalls_attributed_to_barrier() {
        let src = r#"
.kernel k
  MOV R1, R2 {S:1}
  BAR.SYNC {S:2}
  IADD R3, R1, R1 {S:4}
  EXIT
.endfunc
"#;
        let m = gpa_isa::parse_module(src).unwrap();
        let f = m.function("k").unwrap();
        let profile = fake_profile(&[(f.pc_of(2), StallReason::Synchronization, false, 5)]);
        let structure = ProgramStructure::build(&m);
        let fb = blame_function(&m, &structure.functions()[0], &profile, &LatencyTable::default());
        let sync_edge = fb.edges.iter().find(|e| e.detail == DetailedReason::Sync).unwrap();
        assert_eq!(sync_edge.def, 1, "blamed on the BAR.SYNC");
        assert_eq!(sync_edge.stalls, 5.0);
    }

    #[test]
    fn blame_conserves_totals() {
        let (m, profile) = figure4_module();
        let structure = ProgramStructure::build(&m);
        let fb = blame_function(&m, &structure.functions()[0], &profile, &LatencyTable::default());
        let blamed: f64 = fb.edges.iter().map(|e| e.stalls).sum();
        let unattributed: f64 = fb.unattributed.iter().map(|&(_, _, s, _)| s).sum();
        assert!((blamed + unattributed - 4.0).abs() < 1e-9);
    }
}
