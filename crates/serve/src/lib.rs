//! `gpa-serve` — the advisor as a long-lived service.
//!
//! The paper's workflow is iterative: profile → blame → advise → edit →
//! re-profile. Run through a CLI, every iteration rebuilds the same
//! modules, CFGs and program structures from scratch. This crate keeps
//! one [`Session`] alive behind a TCP daemon speaking a newline-delimited
//! JSON protocol, so those artifacts are computed once and every repeat
//! request is answered from a content-addressed report store.
//!
//! ```no_run
//! use gpa_pipeline::Session;
//! use gpa_serve::{serve, ServeClient, ServerConfig};
//! use std::sync::Arc;
//!
//! let handle = serve(Arc::new(Session::full()), ServerConfig::ephemeral())?;
//! let mut client = ServeClient::connect(handle.local_addr())?;
//! let response = client.analyze("rodinia/hotspot", 0)?;
//! assert!(response.ok);
//! client.shutdown()?;
//! handle.join();
//! # Ok::<(), std::io::Error>(())
//! ```
//!
//! The daemon's default engine is a nonblocking epoll reactor (one
//! thread, per-connection state machines — see `docs/serving.md`), and
//! with `--peers` several daemons shard the report store over a
//! consistent-hash [`Ring`], forwarding requests to their owning shard
//! and replicating computed bodies to each shard's ring successor.
//!
//! The wire protocol (ops, schemas, error shapes) is documented in
//! `docs/protocol.md`.
//!
//! [`Session`]: gpa_pipeline::Session

pub mod client;
pub mod faults;
pub mod metrics;
mod peer;
pub mod protocol;
pub mod reactor;
pub mod ring;
pub mod server;
pub mod store;

pub use client::{ClientError, Response, ServeClient};
pub use faults::{FaultAction, FaultPlan, FAULTS_ENV};
pub use metrics::{Metrics, ReactorStats};
pub use protocol::{
    PeerMeta, Request, WireOptions, DEFAULT_ADDR, DEFAULT_SCHEMA, MAX_REPEAT, SCHEMA_VERSIONS,
};
pub use ring::{Ring, Roster};
pub use server::{serve, serve_on, ServerConfig, ServerEngine, ServerHandle, MAX_REACTORS};
pub use store::{ReportStore, StoreStats};
