//! The parallel optimizers in action (the gaussian Fan2 story, Table 3's
//! biggest win): a kernel launched with 16-thread blocks starves the SMs;
//! GPA's Thread Increase optimizer predicts the gain of merging blocks,
//! and the simulator confirms it.
//!
//! ```sh
//! cargo run --release --example occupancy_tuning
//! ```

use gpa::arch::LaunchConfig;
use gpa::core::OptimizerId;
use gpa::kernels::{apps, Params};
use gpa::pipeline::{AnalysisJob, Session};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = Session::full();
    let p = Params::full();
    let app = apps::gaussian::app();

    // Sweep block sizes to see the occupancy cliff the paper describes.
    println!("block size sweep (same total threads):");
    for threads in [16u32, 32, 64, 128, 256] {
        let mut spec = (app.build)(0, &p);
        let total = spec.launch.total_threads() as u32;
        spec.launch = LaunchConfig::new(total / threads, threads);
        let occ = session.arch().occupancy(&spec.launch);
        let cycles = session.time_spec(&spec)?;
        println!(
            "  {threads:>4} threads/block: {cycles:>8} cycles, {:>2} warps/SM (limited by {})",
            occ.warps_per_sm, occ.limiter
        );
    }

    // What does GPA say about the worst configuration?
    let run = session.run_one(&AnalysisJob::new(app.name, 0))?;
    let item = run.report.item(OptimizerId::ThreadIncrease).expect("matches");
    println!(
        "\nGPA suggests {} (rank {}), estimated {:.2}x:",
        item.optimizer(),
        run.report.rank_of(OptimizerId::ThreadIncrease).unwrap(),
        item.estimated_speedup
    );
    for finding in item.findings() {
        println!("  - {finding}");
    }

    let opt_cycles = session.time_one(&AnalysisJob::new(app.name, 1))?;
    println!(
        "\nachieved {:.2}x (paper: 3.86x achieved, 3.33x estimated)",
        run.cycles as f64 / opt_cycles as f64
    );
    Ok(())
}
