//! `rodinia/streamcluster` — `kernel_compute_cost`.
//!
//! Like particlefilter, the cost kernel under-fills the device: the grid
//! has fewer blocks than SMs. Splitting blocks doubles the busy SMs
//! (Block Increase; paper: 1.52× achieved, 1.46× estimated).

use crate::data::ParamBlock;
use crate::dsl::Asm;
use crate::{App, KernelSpec, Params, Stage};
use gpa_arch::LaunchConfig;

/// Builds the streamcluster app entry.
pub fn app() -> App {
    App {
        name: "rodinia/streamcluster",
        kernel: "kernel_compute_cost",
        stages: vec![Stage { name: "Block Increase", optimizer: "GPUBlockIncreaseOptimizer" }],
        build,
    }
}

const DIMS: u32 = 24;

fn build(variant: usize, p: &Params) -> KernelSpec {
    let mut a = Asm::module("streamcluster");
    a.kernel("kernel_compute_cost");
    a.line("streamcluster_cuda.cu", 120);
    a.global_tid();
    a.param_u64(4, 0); // points (dim-major)
    a.param_u64(6, 8); // center
    a.param_u32(9, 24); // n points
    a.i("MOV32I R22, 0 {S:1}"); // cost acc
    a.i("MOV32I R17, 0 {S:1}"); // d
    a.line("streamcluster_cuda.cu", 126);
    a.label("dim_loop");
    a.i("IMAD R10, R17, R9, R0 {S:5}");
    a.addr(12, 4, 10, 2);
    a.i("LDG.E.32 R14, [R12:R13] {W:B0, S:1}");
    a.addr(18, 6, 17, 2);
    a.i("LDG.E.32 R20, [R18:R19] {W:B1, S:1}");
    a.i("FFMA R24, R20, -1.0, R14 {WT:[B0,B1], S:4}");
    a.i("FFMA R22, R24, R24, R22 {S:4}");
    // Per-dimension weighting polynomial (independent work that keeps
    // the SM's issue slots busy — the kernel is throughput-bound).
    for u in 0..12 {
        let r = 40 + (u % 4) * 2;
        a.i(format!("FFMA R{r}, R{r}, 1.0001, 0.001 {{S:4}}", r = r));
    }
    a.i("IADD R17, R17, 1 {S:4}");
    a.i(format!("ISETP.LT.AND P1, R17, {DIMS} {{S:2}}"));
    a.i("@P1 BRA dim_loop {S:5}");
    a.param_u64(26, 16);
    a.addr(30, 26, 0, 2);
    a.i("STG.E.32 [R30:R31], R22 {R:B5, S:2}");
    a.i("EXIT {WT:[B5], S:1}");
    a.endfunc();
    let module = a.build();

    // Baseline: ~5/8 of the SMs get a block; optimized: split in two.
    let base_blocks = (p.sms * 3 / 8).max(1);
    let (blocks, threads) = if variant >= 1 { (base_blocks * 2, 256) } else { (base_blocks, 512) };
    let n = blocks * threads;
    KernelSpec {
        module,
        entry: "kernel_compute_cost".into(),
        launch: LaunchConfig::new(blocks, threads),
        setup: Box::new(move |gpu| {
            let mut rng = crate::data::rng(0x5057_000F);
            let m = n as u64 * DIMS as u64;
            let points = gpu.global_mut().alloc(4 * m);
            gpu.global_mut()
                .write_bytes(points, &crate::data::f32_bytes(&mut rng, m as usize, 0.0, 1.0));
            let center = gpu.global_mut().alloc(4 * DIMS as u64);
            gpu.global_mut()
                .write_bytes(center, &crate::data::f32_bytes(&mut rng, DIMS as usize, 0.0, 1.0));
            let out = gpu.global_mut().alloc(4 * n as u64);
            let mut pb = ParamBlock::new();
            pb.push_u64(points);
            pb.push_u64(center);
            pb.push_u64(out);
            pb.push_u32(n); // @24
            pb.finish()
        }),
        const_bank1: None,
    }
}
