//! Single-dependency coverage — the metric of the paper's Figure 7.
//!
//! A node of the dependency graph is a *single dependency node* when it
//! has no incoming edges, or when each attributable stall reason observed
//! at it has at most one incoming edge — so its stalls can be attributed
//! without apportioning. Pruning cold edges raises this coverage; the
//! paper reports most Rodinia benchmarks above 0.8 after pruning, with
//! `bfs` (64-bit address pairs) and `nw` (intricate control flow) lower.

use super::{DetailedReason, ModuleBlame};
use gpa_sampling::StallReason;

/// Coverage before and after pruning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoverageReport {
    /// Fraction of single-dependency nodes with all edges considered.
    pub before: f64,
    /// Fraction after the three pruning rules.
    pub after: f64,
    /// Number of graph nodes (stalled instructions).
    pub nodes: usize,
}

/// Computes single-dependency coverage over a module's blame graphs.
pub fn single_dependency_coverage(blame: &ModuleBlame) -> CoverageReport {
    let mut nodes = 0usize;
    let mut single_before = 0usize;
    let mut single_after = 0usize;
    for fb in &blame.functions {
        for &node in &fb.graph.nodes {
            nodes += 1;
            if is_single(fb, node, true) {
                single_before += 1;
            }
            if is_single(fb, node, false) {
                single_after += 1;
            }
        }
    }
    let ratio = |n: usize| if nodes == 0 { 1.0 } else { n as f64 / nodes as f64 };
    CoverageReport { before: ratio(single_before), after: ratio(single_after), nodes }
}

fn is_single(fb: &super::FunctionBlame, node: usize, include_pruned: bool) -> bool {
    for base in [
        StallReason::MemoryDependency,
        StallReason::ExecutionDependency,
        StallReason::Synchronization,
    ] {
        let count = fb
            .graph
            .incoming(node, include_pruned)
            .iter()
            .filter(|e| e.detail.base() == base)
            .count();
        if count > 1 {
            return false;
        }
    }
    true
}

/// Per-detail share of blamed stalls, handy for reports.
pub fn detail_shares(blame: &ModuleBlame) -> Vec<(DetailedReason, f64)> {
    let totals = blame.totals_by_detail();
    let sum: f64 = totals.values().map(|(s, _)| s).sum();
    let mut out: Vec<(DetailedReason, f64)> = DetailedReason::ALL
        .iter()
        .filter_map(|d| totals.get(d).map(|(s, _)| (*d, if sum > 0.0 { s / sum } else { 0.0 })))
        .collect();
    out.sort_by(|a, b| b.1.total_cmp(&a.1));
    out
}

#[cfg(test)]
mod tests {
    use super::super::graph::tests::fake_profile;
    use super::super::ModuleBlame;
    use super::*;
    use gpa_arch::LatencyTable;
    use gpa_structure::ProgramStructure;

    #[test]
    fn pruning_raises_coverage() {
        // The Figure 4 kernel: before pruning the IADD node has three
        // incoming edges (two memory, one arithmetic — multi-dependency
        // for memory); after opcode pruning the arithmetic edge is gone
        // but two memory edges remain, so the node stays multi-dependency
        // while simpler nodes become single.
        let src = r#"
.kernel k
  LDG.E.32 R1, [R2:R3] {W:B0, S:1}
  IMAD R4, R5, R6, R4 {S:5}
  IADD R7, R1, R4 {WT:[B0], S:4}
  EXIT
.endfunc
"#;
        let m = gpa_isa::parse_module(src).unwrap();
        let f = m.function("k").unwrap();
        let profile =
            fake_profile(&[(f.pc_of(2), gpa_sampling::StallReason::MemoryDependency, false, 4)]);
        let structure = ProgramStructure::build(&m);
        let blame = ModuleBlame::build(&m, &structure, &profile, &LatencyTable::default());
        let cov = single_dependency_coverage(&blame);
        assert_eq!(cov.nodes, 1);
        // Before pruning: LDG (mem) and IMAD (arith) both feed the node —
        // one edge per reason class, so it is already single for each
        // class... the IMAD edge is an *execution* class edge, the LDG a
        // *memory* one: single before and after.
        assert_eq!(cov.before, 1.0);
        assert_eq!(cov.after, 1.0);
    }

    #[test]
    fn multi_memory_sources_lower_coverage_until_pruned() {
        // Two global loads feed the use; one sits beyond a re-reader so
        // the dominator rule prunes it, flipping the node to single.
        let src = r#"
.kernel k
  LDG.E.32 R1, [R2:R3] {W:B0, S:1}
  IADD R8, R1, 1 {WT:[B0], S:4}
  LDG.E.32 R1, [R4:R5] {W:B0, S:1}
  IADD R9, R1, 2 {WT:[B0], S:4}
  EXIT
.endfunc
"#;
        let m = gpa_isa::parse_module(src).unwrap();
        let f = m.function("k").unwrap();
        let profile = fake_profile(&[
            (f.pc_of(1), gpa_sampling::StallReason::MemoryDependency, false, 1),
            (f.pc_of(3), gpa_sampling::StallReason::MemoryDependency, false, 3),
        ]);
        let structure = ProgramStructure::build(&m);
        let blame = ModuleBlame::build(&m, &structure, &profile, &LatencyTable::default());
        let cov = single_dependency_coverage(&blame);
        assert_eq!(cov.nodes, 2);
        assert!(cov.after >= cov.before);
        assert_eq!(cov.after, 1.0, "each use has exactly one live source");
    }
}
