//! The application registry — one module per benchmark.

pub mod backprop;
pub mod bfs;
pub mod btree;
pub mod cfd;
pub mod exatensor;
pub mod gaussian;
pub mod heartwall;
pub mod hotspot;
pub mod huffman;
pub mod kmeans;
pub mod lavamd;
pub mod lud;
pub mod membound;
pub mod minimod;
pub mod myocyte;
pub mod nw;
pub mod particlefilter;
pub mod pathfinder;
pub mod pelec;
pub mod quicksilver;
pub mod sradv1;
pub mod streamcluster;

use crate::App;

/// All applications in the paper's Table 3 order.
pub fn all_apps() -> Vec<App> {
    vec![
        backprop::app(),
        bfs::app(),
        btree::app(),
        cfd::app(),
        gaussian::app(),
        heartwall::app(),
        hotspot::app(),
        huffman::app(),
        kmeans::app(),
        lavamd::app(),
        lud::app(),
        myocyte::app(),
        nw::app(),
        particlefilter::app(),
        streamcluster::app(),
        sradv1::app(),
        pathfinder::app(),
        quicksilver::app(),
        exatensor::app(),
        pelec::app(),
        minimod::app(),
    ]
}

/// The Rodinia subset (Figure 7's benchmarks).
pub fn rodinia_apps() -> Vec<App> {
    all_apps().into_iter().filter(|a| a.name.starts_with("rodinia/")).collect()
}

/// Looks an application up by name.
pub fn app_by_name(name: &str) -> Option<App> {
    all_apps().into_iter().find(|a| a.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{arch_for, time_spec};
    use crate::Params;

    #[test]
    fn registry_is_complete() {
        let apps = all_apps();
        assert_eq!(apps.len(), 21);
        let rows: usize = apps.iter().map(|a| a.stages.len()).sum();
        assert_eq!(rows, 26, "Table 3 has 26 optimization rows");
        assert_eq!(rodinia_apps().len(), 17);
        assert!(app_by_name("rodinia/hotspot").is_some());
        assert!(app_by_name("nope").is_none());
    }

    /// Every variant of every app must build and run to completion on a
    /// tiny configuration.
    #[test]
    fn all_variants_run() {
        let p = Params::test();
        let arch = arch_for(&p);
        for app in all_apps() {
            for v in 0..app.variants() {
                let spec = (app.build)(v, &p);
                let cycles = time_spec(&spec, &arch)
                    .unwrap_or_else(|e| panic!("{} variant {v} failed: {e}", app.name));
                assert!(cycles > 0, "{} variant {v}", app.name);
            }
        }
    }
}
