//! Reproduces **Figure 5**: the detailed dependency-stall classification,
//! plus the measured per-class blame shares on a real kernel profile.

use gpa_arch::LatencyTable;
use gpa_core::blamer::coverage::detail_shares;
use gpa_core::blamer::DetailedReason;
use gpa_core::ModuleBlame;
use gpa_kernels::runner::{arch_for, run_spec};
use gpa_kernels::{apps, Params};
use gpa_structure::ProgramStructure;

fn main() {
    println!("Figure 5 — detailed stall classification\n");
    for d in DetailedReason::ALL {
        println!("  {:<32} refines {}", d.to_string(), d.base());
    }
    // Measure the shares on the Quicksilver baseline (local-memory spills
    // plus arithmetic and global dependencies).
    let p = Params::test();
    let arch = arch_for(&p);
    let app = apps::quicksilver::app();
    let spec = (app.build)(0, &p);
    let run = run_spec(&spec, &arch).expect("runs");
    let structure = ProgramStructure::build(&spec.module);
    let blame = ModuleBlame::build(
        &spec.module,
        &structure,
        &run.profile,
        &LatencyTable::for_arch(&arch),
    );
    println!("\nblamed-stall shares on Quicksilver (baseline):");
    for (d, share) in detail_shares(&blame) {
        println!("  {:<32} {:>5.1}%", d.to_string(), 100.0 * share);
    }
}
