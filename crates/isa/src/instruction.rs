//! Instructions and their def/use model.

use crate::control::ControlCode;
use crate::opcode::Opcode;
use crate::operand::Operand;
use crate::register::{BarrierReg, PredReg, Predicate, Register};
use std::fmt;

/// An opcode modifier (`LDG.E.32`, `ISETP.LT.AND`, `MUFU.RCP`, ...).
///
/// Modifiers are **ordered**: `F2F.F32.F64` (demote a 64-bit float to
/// 32 bits) differs from `F2F.F64.F32` (promote). Up to four modifiers fit
/// in the binary encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Modifier {
    Sz32,
    Sz64,
    Sz128,
    E,
    Wide,
    U32,
    S32,
    F32,
    F64,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
    Xor,
    Rcp,
    Rsq,
    Sqrt,
    Sin,
    Cos,
    Ex2,
    Lg2,
    L,
    R,
    Sync,
    Any,
    All,
}

impl Modifier {
    /// All modifiers; index + 1 is the 5-bit encoding code (0 = absent).
    pub const ALL: [Modifier; 30] = [
        Modifier::Sz32,
        Modifier::Sz64,
        Modifier::Sz128,
        Modifier::E,
        Modifier::Wide,
        Modifier::U32,
        Modifier::S32,
        Modifier::F32,
        Modifier::F64,
        Modifier::Lt,
        Modifier::Le,
        Modifier::Gt,
        Modifier::Ge,
        Modifier::Eq,
        Modifier::Ne,
        Modifier::And,
        Modifier::Or,
        Modifier::Xor,
        Modifier::Rcp,
        Modifier::Rsq,
        Modifier::Sqrt,
        Modifier::Sin,
        Modifier::Cos,
        Modifier::Ex2,
        Modifier::Lg2,
        Modifier::L,
        Modifier::R,
        Modifier::Sync,
        Modifier::Any,
        Modifier::All,
    ];

    /// Stable non-zero code used by the binary encoding.
    pub fn code(self) -> u8 {
        Self::ALL.iter().position(|&m| m == self).unwrap() as u8 + 1
    }

    /// Inverse of [`Modifier::code`].
    pub fn from_code(code: u8) -> Option<Self> {
        if code == 0 {
            return None;
        }
        Self::ALL.get(code as usize - 1).copied()
    }

    /// The assembly spelling (without the leading dot).
    pub fn name(self) -> &'static str {
        match self {
            Modifier::Sz32 => "32",
            Modifier::Sz64 => "64",
            Modifier::Sz128 => "128",
            Modifier::E => "E",
            Modifier::Wide => "WIDE",
            Modifier::U32 => "U32",
            Modifier::S32 => "S32",
            Modifier::F32 => "F32",
            Modifier::F64 => "F64",
            Modifier::Lt => "LT",
            Modifier::Le => "LE",
            Modifier::Gt => "GT",
            Modifier::Ge => "GE",
            Modifier::Eq => "EQ",
            Modifier::Ne => "NE",
            Modifier::And => "AND",
            Modifier::Or => "OR",
            Modifier::Xor => "XOR",
            Modifier::Rcp => "RCP",
            Modifier::Rsq => "RSQ",
            Modifier::Sqrt => "SQRT",
            Modifier::Sin => "SIN",
            Modifier::Cos => "COS",
            Modifier::Ex2 => "EX2",
            Modifier::Lg2 => "LG2",
            Modifier::L => "L",
            Modifier::R => "R",
            Modifier::Sync => "SYNC",
            Modifier::Any => "ANY",
            Modifier::All => "ALL",
        }
    }

    /// Parses the assembly spelling.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|m| m.name() == name)
    }
}

impl fmt::Display for Modifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A storage location for def/use analysis: a general-purpose register, a
/// predicate register, or a **virtual barrier register**.
///
/// GPA's instruction blamer treats the six scoreboard barriers as registers
/// so that dependencies carried only by control codes (Figure 3 of the
/// paper: an `LDG` writing `B0` and a `BRA` waiting on `B0`) fall out of the
/// ordinary def–use machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Slot {
    /// A general-purpose register.
    Reg(Register),
    /// A predicate register.
    Pred(PredReg),
    /// A virtual barrier register.
    Bar(BarrierReg),
}

impl fmt::Display for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Slot::Reg(r) => write!(f, "{r}"),
            Slot::Pred(p) => write!(f, "{p}"),
            Slot::Bar(b) => write!(f, "{b}"),
        }
    }
}

/// One machine instruction.
///
/// This is a passive data structure: all fields are public, in the spirit of
/// a decoded instruction record. [`Instruction::defs`] and
/// [`Instruction::uses`] expose the def/use sets (including virtual barrier
/// registers) that the blamer's backward slicing consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct Instruction {
    /// Guard predicate (`None` behaves like the cover-all predicate `_`).
    pub pred: Option<Predicate>,
    /// The opcode.
    pub opcode: Opcode,
    /// Ordered modifiers.
    pub mods: Vec<Modifier>,
    /// Destination operands (empty for stores and branches).
    pub dsts: Vec<Operand>,
    /// Source operands.
    pub srcs: Vec<Operand>,
    /// Scheduling control code.
    pub ctrl: ControlCode,
}

impl Instruction {
    /// Creates an unpredicated instruction with a default control code.
    pub fn new(opcode: Opcode, dsts: Vec<Operand>, srcs: Vec<Operand>) -> Self {
        Instruction { pred: None, opcode, mods: Vec::new(), dsts, srcs, ctrl: ControlCode::none() }
    }

    /// Builder-style: adds a modifier.
    pub fn with_mod(mut self, m: Modifier) -> Self {
        self.mods.push(m);
        self
    }

    /// Builder-style: sets the guard predicate.
    pub fn with_pred(mut self, p: Predicate) -> Self {
        self.pred = Some(p);
        self
    }

    /// Builder-style: sets the control code.
    pub fn with_ctrl(mut self, ctrl: ControlCode) -> Self {
        self.ctrl = ctrl;
        self
    }

    /// Storage locations written by this instruction.
    ///
    /// Includes destination registers and predicates (except `RZ`/`PT`) and
    /// the virtual barrier registers named by the write/read barrier fields
    /// — *setting* a barrier is modeled as a def, waiting on it as a use.
    pub fn defs(&self) -> Vec<Slot> {
        let mut out = Vec::new();
        for d in &self.dsts {
            for r in d.dst_regs() {
                if !r.is_zero() {
                    out.push(Slot::Reg(r));
                }
            }
            if let Some(p) = d.pred() {
                if !p.is_true() {
                    out.push(Slot::Pred(p));
                }
            }
        }
        if let Some(b) = self.ctrl.write_barrier {
            out.push(Slot::Bar(b));
        }
        if let Some(b) = self.ctrl.read_barrier {
            out.push(Slot::Bar(b));
        }
        out
    }

    /// Storage locations read by this instruction.
    ///
    /// Includes the guard predicate, source registers/predicates (except
    /// `RZ`/`PT`), address registers of memory operands, and the virtual
    /// barrier registers named by the wait mask.
    pub fn uses(&self) -> Vec<Slot> {
        let mut out = Vec::new();
        if let Some(p) = self.pred {
            if !p.reg.is_true() {
                out.push(Slot::Pred(p.reg));
            }
        }
        for s in &self.srcs {
            for r in s.src_regs() {
                if !r.is_zero() {
                    out.push(Slot::Reg(r));
                }
            }
            if let Some(p) = s.pred() {
                if !p.is_true() {
                    out.push(Slot::Pred(p));
                }
            }
        }
        for b in self.ctrl.waits() {
            out.push(Slot::Bar(b));
        }
        out
    }

    /// Registers read to *produce a stored value* (store data operands),
    /// used for WAR-dependency classification.
    pub fn store_data_regs(&self) -> Vec<Register> {
        if !self.opcode.is_store() {
            return Vec::new();
        }
        self.srcs
            .iter()
            .filter(|s| !matches!(s, Operand::Mem(_)))
            .flat_map(|s| s.src_regs())
            .filter(|r| !r.is_zero())
            .collect()
    }

    /// The branch/call target address, if this is a resolved direct branch.
    pub fn branch_target(&self) -> Option<u64> {
        if !matches!(self.opcode, Opcode::Bra | Opcode::Cal | Opcode::Bssy) {
            return None;
        }
        self.srcs.iter().find_map(|s| match s {
            Operand::Imm(v) => Some(*v as u64),
            _ => None,
        })
    }

    /// Full mnemonic with modifiers, e.g. `LDG.E.32`.
    pub fn mnemonic(&self) -> String {
        let mut s = self.opcode.name().to_string();
        for m in &self.mods {
            s.push('.');
            s.push_str(m.name());
        }
        s
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(p) = self.pred {
            write!(f, "{p} ")?;
        }
        write!(f, "{}", self.mnemonic())?;
        let ops: Vec<String> =
            self.dsts.iter().chain(self.srcs.iter()).map(|o| o.to_string()).collect();
        if !ops.is_empty() {
            write!(f, " {}", ops.join(", "))?;
        }
        write!(f, " {}", self.ctrl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operand::MemRef;

    fn r(n: u8) -> Register {
        Register::from_u8(n)
    }

    /// The paper's Table 1 instruction: `@P0 LDG.32 R0, [R2]` with wait mask
    /// B0|B1, write barrier B0, read barrier B1.
    fn table1_instruction() -> Instruction {
        Instruction::new(
            Opcode::Ldg,
            vec![Operand::Reg(r(0))],
            vec![Operand::Mem(MemRef { base: r(2), offset: 0, wide: true })],
        )
        .with_mod(Modifier::Sz32)
        .with_pred(Predicate::pos(PredReg::new(0).unwrap()))
        .with_ctrl(
            ControlCode::none()
                .with_write_barrier(BarrierReg::new(0).unwrap())
                .with_read_barrier(BarrierReg::new(1).unwrap())
                .with_wait(BarrierReg::new(0).unwrap())
                .with_wait(BarrierReg::new(1).unwrap()),
        )
    }

    #[test]
    fn table1_defs_and_uses() {
        let i = table1_instruction();
        let defs = i.defs();
        // R0 plus virtual barriers B0 (write) and B1 (read).
        assert!(defs.contains(&Slot::Reg(r(0))));
        assert!(defs.contains(&Slot::Bar(BarrierReg::new(0).unwrap())));
        assert!(defs.contains(&Slot::Bar(BarrierReg::new(1).unwrap())));
        let uses = i.uses();
        // Guard P0, the 64-bit address pair R2:R3, wait-mask barriers.
        assert!(uses.contains(&Slot::Pred(PredReg::new(0).unwrap())));
        assert!(uses.contains(&Slot::Reg(r(2))));
        assert!(uses.contains(&Slot::Reg(r(3))));
        assert!(uses.contains(&Slot::Bar(BarrierReg::new(0).unwrap())));
        assert!(uses.contains(&Slot::Bar(BarrierReg::new(1).unwrap())));
    }

    #[test]
    fn display_format() {
        let i = table1_instruction();
        assert_eq!(i.to_string(), "@P0 LDG.32 R0, [R2:R3] {WT:[B0,B1], W:B0, R:B1, S:1}");
    }

    #[test]
    fn rz_and_pt_excluded() {
        let i = Instruction::new(
            Opcode::Iadd,
            vec![Operand::Reg(Register::ZERO)],
            vec![Operand::Reg(r(1)), Operand::Reg(Register::ZERO)],
        );
        assert!(i.defs().is_empty());
        assert_eq!(i.uses(), vec![Slot::Reg(r(1))]);
    }

    #[test]
    fn store_data_regs_excludes_address() {
        let st = Instruction::new(
            Opcode::Stg,
            vec![],
            vec![Operand::Mem(MemRef { base: r(4), offset: 0, wide: true }), Operand::Reg(r(8))],
        );
        assert_eq!(st.store_data_regs(), vec![r(8)]);
    }

    #[test]
    fn modifier_codes_roundtrip() {
        for m in Modifier::ALL {
            assert_eq!(Modifier::from_code(m.code()), Some(m));
            assert_eq!(Modifier::from_name(m.name()), Some(m));
        }
        assert_eq!(Modifier::from_code(0), None);
    }
}
