//! Control-code stall assignment — the `ptxas` scheduling step.
//!
//! For each **fixed-latency** producer, the assembler must guarantee that a
//! consumer in the same basic block does not issue before the producer's
//! latency has elapsed. Volta encodes this as per-instruction *stall
//! counts*: the scheduler waits `stall` cycles after issuing an instruction
//! before considering the warp's next instruction.
//!
//! [`assign_stall_counts`] performs that pass: it simulates in-order issue
//! through each basic block and inflates stall counts where a register or
//! predicate would be read too early. Dependencies that cross block
//! boundaries are left to the simulator's scoreboard interlock (which
//! reports them as execution-dependency stalls, as real hardware would
//! surface them through CUPTI).

use crate::latency::LatencyTable;
use gpa_isa::{Function, Opcode, Slot};
use std::collections::HashMap;

/// Ensures intra-block fixed-latency dependencies are covered by control-
/// code stall counts, mutating the function in place.
///
/// Variable-latency producers are skipped: their consumers synchronize via
/// scoreboard barriers (wait masks), which kernel builders set explicitly.
///
/// Returns the number of instructions whose stall count was raised.
pub fn assign_stall_counts(f: &mut Function, lat: &LatencyTable) -> usize {
    let n = f.instrs.len();
    // Block leaders: entry, branch targets, post-terminator instructions.
    let mut leader = vec![false; n.max(1)];
    if n > 0 {
        leader[0] = true;
    }
    for (i, instr) in f.instrs.iter().enumerate() {
        match instr.opcode {
            Opcode::Bra | Opcode::Exit | Opcode::Ret => {
                if let Some(t) = instr.branch_target() {
                    if let Some(idx) = f.index_of_pc(t) {
                        leader[idx] = true;
                    }
                }
                if i + 1 < n {
                    leader[i + 1] = true;
                }
            }
            _ => {}
        }
    }
    let mut raised = 0;
    let mut block_start = 0;
    for (i, &lead) in leader.iter().enumerate() {
        if i > block_start && lead {
            raised += schedule_block(f, lat, block_start, i);
            block_start = i;
        }
    }
    raised + schedule_block(f, lat, block_start, n)
}

fn schedule_block(f: &mut Function, lat: &LatencyTable, start: usize, end: usize) -> usize {
    let mut raised = 0;
    // Issue-time simulation: slot -> cycle at which its value is ready.
    let mut ready: HashMap<Slot, u64> = HashMap::new();
    let mut now: u64 = 0;
    for i in start..end {
        let needed = f.instrs[i]
            .uses()
            .iter()
            .filter_map(|s| match s {
                Slot::Bar(_) => None, // barrier waits handled dynamically
                other => ready.get(other).copied(),
            })
            .max()
            .unwrap_or(0);
        if needed > now && i > start {
            let deficit = needed - now;
            // Spread the deficit over preceding instructions, each stall
            // field capped at 15.
            let mut remaining = deficit;
            let mut j = i;
            while remaining > 0 && j > start {
                j -= 1;
                let room = 15u64.saturating_sub(f.instrs[j].ctrl.stall as u64);
                let add = room.min(remaining);
                if add > 0 {
                    f.instrs[j].ctrl.stall += add as u8;
                    remaining -= add;
                    raised += 1;
                }
            }
            now = needed - remaining; // remaining > 0 only in pathological blocks
        }
        // Issue at `now`; next instruction earliest at now + stall.
        let stall = f.instrs[i].ctrl.stall.max(1) as u64;
        if let Some(l) = lat.fixed_latency(&f.instrs[i]) {
            let done = now + l as u64;
            for d in f.instrs[i].defs() {
                if !matches!(d, Slot::Bar(_)) {
                    ready.insert(d, done);
                }
            }
        } else {
            // Variable latency: consumers must wait on the barrier; mark
            // the defs as ready immediately for this static pass.
            for d in f.instrs[i].defs() {
                if !matches!(d, Slot::Bar(_)) {
                    ready.insert(d, now + 1);
                }
            }
        }
        now += stall;
    }
    raised
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_isa::parse_module;

    #[test]
    fn back_to_back_dependency_gets_stalled() {
        let mut m = parse_module(
            r#"
.kernel k
  IADD R0, R1, R2 {S:1}
  IADD R3, R0, R4 {S:1}
  EXIT
.endfunc
"#,
        )
        .unwrap();
        let lat = LatencyTable::default();
        let f = m.functions.get_mut(0).unwrap();
        let raised = assign_stall_counts(f, &lat);
        assert!(raised >= 1);
        // The first IADD must now cover its 4-cycle latency.
        assert!(f.instrs[0].ctrl.stall >= 4);
    }

    #[test]
    fn independent_instructions_untouched() {
        let mut m = parse_module(
            r#"
.kernel k
  IADD R0, R1, R2 {S:1}
  IADD R3, R4, R5 {S:1}
  IADD R6, R7, R8 {S:1}
  EXIT
.endfunc
"#,
        )
        .unwrap();
        let lat = LatencyTable::default();
        let f = m.functions.get_mut(0).unwrap();
        assert_eq!(assign_stall_counts(f, &lat), 0);
        assert!(f.instrs.iter().all(|i| i.ctrl.stall == 1));
    }

    #[test]
    fn distance_reduces_added_stall() {
        let mut m = parse_module(
            r#"
.kernel k
  IADD R0, R1, R2 {S:1}
  IADD R3, R4, R5 {S:1}
  IADD R6, R7, R8 {S:1}
  IADD R9, R0, R4 {S:1}
  EXIT
.endfunc
"#,
        )
        .unwrap();
        let lat = LatencyTable::default();
        let f = m.functions.get_mut(0).unwrap();
        assign_stall_counts(f, &lat);
        // Two intermediate single-cycle issues already cover 2 of the 4
        // cycles; only 1 extra cycle is needed on the instruction before
        // the consumer (issue times 0,1,2,3 → R0 ready at 4 → deficit 1).
        assert_eq!(f.instrs[2].ctrl.stall, 2);
        assert_eq!(f.instrs[0].ctrl.stall, 1);
    }

    #[test]
    fn variable_latency_left_to_barriers() {
        let mut m = parse_module(
            r#"
.kernel k
  LDG.E.32 R0, [R2:R3] {W:B0, S:1}
  IADD R4, R0, R1 {WT:[B0], S:1}
  EXIT
.endfunc
"#,
        )
        .unwrap();
        let lat = LatencyTable::default();
        let f = m.functions.get_mut(0).unwrap();
        assign_stall_counts(f, &lat);
        assert_eq!(f.instrs[0].ctrl.stall, 1, "LDG consumer is barrier-guarded");
    }
}
