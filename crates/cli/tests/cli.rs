//! End-to-end tests of the `gpa` binary's argument handling: strict
//! flag rejection, machine-readable error output under `--json`, and
//! the `request` op surface. These spawn the real binary (Cargo builds
//! it for integration tests and exposes its path via `CARGO_BIN_EXE_*`).

use std::process::{Command, Output};

fn gpa(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_gpa")).args(args).output().expect("binary runs")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn unknown_flags_are_usage_errors_not_app_names() {
    let out = gpa(&["analyze", "--jsno"]);
    assert_eq!(out.status.code(), Some(2), "usage error exit code");
    let err = stderr(&out);
    assert!(err.contains("unknown flag `--jsno`"), "names the bad flag: {err}");
    assert!(err.contains("usage:"), "shows usage: {err}");
    // Short-dash junk is rejected too, not treated as an app.
    let out = gpa(&["analyze", "-q"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown flag `-q`"));
}

#[test]
fn flags_are_scoped_to_their_command() {
    let out = gpa(&["list", "--json"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--json is not supported"), "{}", stderr(&out));
    let out = gpa(&["analyze", "rodinia/hotspot", "--workers", "2"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--workers is not supported"), "{}", stderr(&out));
}

#[test]
fn value_flags_require_values() {
    let out = gpa(&["serve", "--addr"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--addr requires a value"), "{}", stderr(&out));
    let out = gpa(&["serve", "--workers", "two"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--workers expects a number"), "{}", stderr(&out));
}

#[test]
fn analyze_json_reports_errors_as_json() {
    let out = gpa(&["analyze", "no/such-app", "--json"]);
    assert_eq!(out.status.code(), Some(1), "failure exit code");
    let doc = gpa_json::Json::parse(&stdout(&out)).expect("stdout is JSON even on error");
    assert_eq!(doc.field("app").unwrap().as_str().unwrap(), "no/such-app");
    let msg = doc.field("error").unwrap().as_str().unwrap();
    assert!(msg.contains("unknown app"), "{msg}");
}

#[test]
fn analyze_without_json_keeps_errors_on_stderr() {
    let out = gpa(&["analyze", "no/such-app"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stdout(&out).is_empty(), "no stdout noise");
    assert!(stderr(&out).contains("unknown app"), "{}", stderr(&out));
}

#[test]
fn bad_variant_argument_is_a_usage_error() {
    let out = gpa(&["analyze", "rodinia/hotspot", "seven"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("variant `seven` is not a number"), "{}", stderr(&out));
}

#[test]
fn request_needs_an_op_and_valid_op_names() {
    let out = gpa(&["request"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("needs an op"), "{}", stderr(&out));
    let out = gpa(&["request", "explode"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown request op"), "{}", stderr(&out));
}

#[test]
fn request_usage_errors_do_not_depend_on_a_daemon() {
    // No daemon is listening, but these are command-line mistakes: they
    // must exit 2 with a usage message, not 1 with a connection error.
    let out = gpa(&["request", "analyze"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("needs an app name"), "{}", stderr(&out));
    let out = gpa(&["request", "analyze_profile", "rodinia/hotspot"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--profile"), "{}", stderr(&out));
    let out = gpa(&["request", "analyze_profile", "rodinia/hotspot", "--profile", "/no/file"]);
    assert_eq!(out.status.code(), Some(1), "unreadable file is a runtime error");
    assert!(stderr(&out).contains("cannot read"), "{}", stderr(&out));
}

#[test]
fn advice_flags_are_validated_strictly() {
    // --schema shapes --json output only; without --json it is an error.
    let out = gpa(&["analyze", "rodinia/hotspot", "--schema", "v2"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--json"), "{}", stderr(&out));
    // Unknown schema / category values name the bad value.
    let out = gpa(&["analyze", "rodinia/hotspot", "--json", "--schema", "v9"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown schema `v9`"), "{}", stderr(&out));
    let out = gpa(&["analyze", "rodinia/hotspot", "--category", "warp-drive"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown category `warp-drive`"), "{}", stderr(&out));
    // Numeric flags reject junk.
    let out = gpa(&["analyze", "rodinia/hotspot", "--min-speedup", "fast"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--min-speedup expects a number"), "{}", stderr(&out));
    let out = gpa(&["analyze", "rodinia/hotspot", "--top", "few"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--top expects a number"), "{}", stderr(&out));
    // Advice flags stay scoped to analyze/request.
    let out = gpa(&["list", "--top", "3"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--top is not supported"), "{}", stderr(&out));
    let out = gpa(&["serve", "--schema", "v2"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--schema is not supported"), "{}", stderr(&out));
}

#[test]
fn request_advice_flags_are_validated_before_connecting() {
    // Bad option values are usage errors even with no daemon running.
    let out = gpa(&["request", "analyze", "rodinia/hotspot", "--category", "warp-drive"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown category"), "{}", stderr(&out));
    let out = gpa(&["request", "analyze", "rodinia/hotspot", "--schema", "3000"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown schema"), "{}", stderr(&out));
    // Advice flags are scoped to the advising ops; on status/shutdown
    // they would be silently ignored, so they are usage errors.
    let out = gpa(&["request", "status", "--schema", "v2"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("--schema is not supported by `request status`"),
        "{}",
        stderr(&out)
    );
    let out = gpa(&["request", "shutdown", "--top", "3"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("--top is not supported by `request shutdown`"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn profile_flags_are_validated_strictly() {
    // --repeat must be a positive count.
    let out = gpa(&["profile", "rodinia/hotspot", "--repeat", "0"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--repeat expects a count of at least 1"), "{}", stderr(&out));
    let out = gpa(&["analyze", "rodinia/hotspot", "--repeat", "many"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--repeat expects a number"), "{}", stderr(&out));
    // The daemon's compute cap is enforced before connecting anywhere.
    let out = gpa(&["request", "analyze", "rodinia/hotspot", "--repeat", "65"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--repeat exceeds the limit of 64"), "{}", stderr(&out));
    // --out is scoped to `profile`; --json is not a `profile` flag.
    let out = gpa(&["analyze", "rodinia/hotspot", "--out", "x.json"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--out is not supported"), "{}", stderr(&out));
    let out = gpa(&["profile", "rodinia/hotspot", "--json"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--json is not supported"), "{}", stderr(&out));
    // Repeat stays off `request` ops where it cannot apply.
    let out = gpa(&["request", "status", "--repeat", "2"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("--repeat is not supported by `request status`"),
        "{}",
        stderr(&out)
    );
    let out = gpa(&["request", "analyze_profile", "rodinia/hotspot", "--repeat", "2"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("--repeat is not supported by `request analyze_profile`"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn mem_model_flag_is_validated_and_scoped() {
    let out = gpa(&["analyze", "rodinia/hotspot", "--mem-model", "l3"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("unknown memory model `l3` (expected flat or hierarchy)"),
        "{}",
        stderr(&out)
    );
    // Scoped off subcommands that never simulate anything.
    let out = gpa(&["asm", "rodinia/hotspot", "--mem-model", "hierarchy"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--mem-model is not supported"), "{}", stderr(&out));
    let out = gpa(&["request", "status", "--mem-model", "hierarchy"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("--mem-model is not supported by `request status`"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn analyze_with_the_hierarchy_model_reaches_the_memory_advisors() {
    // The flat default never emits hierarchy stall reasons, so the
    // memory optimizers stay silent there; under --mem-model hierarchy
    // the same kernel may surface them. Either way the run must
    // succeed and produce a well-formed v2 report.
    let out =
        gpa(&["analyze", "rodinia/nw", "--json", "--schema", "v2", "--mem-model", "hierarchy"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let doc = gpa_json::Json::parse(stdout(&out).trim()).expect("v2 report is JSON");
    assert!(doc.field("report").is_ok(), "has a report body");
}

#[test]
fn profile_writes_merged_dumps_to_files() {
    let dir = std::env::temp_dir().join(format!("gpa-cli-profile-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let single = dir.join("single.json");
    let merged = dir.join("merged.json");
    let out = gpa(&["profile", "rodinia/hotspot", "--out", single.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(stdout(&out).is_empty(), "--out leaves stdout clean");
    let out =
        gpa(&["profile", "rodinia/hotspot", "--repeat", "2", "--out", merged.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));

    let single = std::fs::read_to_string(&single).unwrap();
    let merged = std::fs::read_to_string(&merged).unwrap();
    let single = gpa_json::Json::parse(&single).expect("dump is JSON");
    let merged = gpa_json::Json::parse(&merged).expect("dump is JSON");
    let samples = |doc: &gpa_json::Json| doc.field("total_samples").unwrap().as_u64().unwrap();
    let cycles = |doc: &gpa_json::Json| doc.field("cycles").unwrap().as_u64().unwrap();
    assert!(samples(&merged) > samples(&single), "merged replays hold more samples");
    assert_eq!(cycles(&merged), cycles(&single), "ground-truth cycles unchanged");
    // And `--out`-less profile prints the same single-launch dump.
    let out = gpa(&["profile", "rodinia/hotspot"]);
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(gpa_json::Json::parse(stdout(&out).trim()).unwrap(), single);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn request_against_no_daemon_fails_cleanly() {
    // Port 9 (discard) on loopback is essentially never listening.
    let out = gpa(&["request", "status", "--addr", "127.0.0.1:9"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("cannot connect"), "{}", stderr(&out));
}

#[test]
fn serve_reactors_flag_is_validated_strictly() {
    // Zero reactors is meaningless: the daemon needs at least one.
    let out = gpa(&["serve", "--reactors", "0"]);
    assert_eq!(out.status.code(), Some(2), "usage error exit code");
    assert!(stderr(&out).contains("--reactors expects a count of at least 1"), "{}", stderr(&out));
    // Non-numeric values are parse errors, not silently defaulted.
    let out = gpa(&["serve", "--reactors", "two"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--reactors expects a number"), "{}", stderr(&out));
    let out = gpa(&["serve", "--reactors"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--reactors requires a value"), "{}", stderr(&out));
    // The flag configures reactor threads; the threads engine has none.
    let out = gpa(&["serve", "--reactors", "2", "--engine", "threads"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--reactors only applies"), "{}", stderr(&out));
    // And it is scoped to `serve`.
    let out = gpa(&["analyze", "rodinia/hotspot", "--reactors", "2"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--reactors is not supported"), "{}", stderr(&out));
}
