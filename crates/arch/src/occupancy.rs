//! Occupancy calculation for parallel optimizers.

use crate::config::ArchConfig;
use std::fmt;

/// A kernel launch configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of thread blocks in the grid.
    pub grid_blocks: u32,
    /// Threads per block.
    pub block_threads: u32,
    /// Registers used per thread.
    pub regs_per_thread: u32,
    /// Shared memory per block in bytes.
    pub smem_per_block: u32,
}

impl LaunchConfig {
    /// A launch with `grid_blocks × block_threads` threads and modest
    /// per-thread resources.
    pub fn new(grid_blocks: u32, block_threads: u32) -> Self {
        LaunchConfig { grid_blocks, block_threads, regs_per_thread: 32, smem_per_block: 0 }
    }

    /// Warps per block (rounded up).
    pub fn warps_per_block(&self, warp_size: u32) -> u32 {
        self.block_threads.div_ceil(warp_size)
    }

    /// Total threads in the grid.
    pub fn total_threads(&self) -> u64 {
        self.grid_blocks as u64 * self.block_threads as u64
    }
}

/// What bounds the number of resident blocks per SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OccLimiter {
    /// The warp limit per SM.
    Warps,
    /// The register file.
    Registers,
    /// Shared-memory capacity.
    SharedMem,
    /// The hardware block-slot limit.
    Blocks,
    /// The grid has fewer blocks than the device could host.
    GridSize,
}

impl fmt::Display for OccLimiter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OccLimiter::Warps => "warps per SM",
            OccLimiter::Registers => "register file",
            OccLimiter::SharedMem => "shared memory",
            OccLimiter::Blocks => "block slots",
            OccLimiter::GridSize => "grid size",
        };
        f.write_str(s)
    }
}

/// Achievable occupancy of a launch on a machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occupancy {
    /// Resident blocks per SM.
    pub blocks_per_sm: u32,
    /// Resident warps per SM.
    pub warps_per_sm: u32,
    /// Average active warps per scheduler (the `W` of Eqs. 6–9).
    pub warps_per_scheduler: f64,
    /// The binding resource.
    pub limiter: OccLimiter,
    /// Fraction of the device's warp slots used (0..=1).
    pub ratio: f64,
}

impl ArchConfig {
    /// Computes the occupancy of `lc` on this machine.
    pub fn occupancy(&self, lc: &LaunchConfig) -> Occupancy {
        let wpb = lc.warps_per_block(self.warp_size).max(1);
        let by_warps = self.max_warps_per_sm() / wpb;
        let regs_per_block = lc.regs_per_thread * wpb * self.warp_size;
        let by_regs = self.registers_per_sm.checked_div(regs_per_block).unwrap_or(u32::MAX);
        let by_smem = self.shared_mem_per_sm.checked_div(lc.smem_per_block).unwrap_or(u32::MAX);
        let by_slots = self.max_blocks_per_sm;
        let hw_limit = by_warps.min(by_regs).min(by_smem).min(by_slots);
        // Blocks the grid can actually spread over every SM.
        let by_grid = lc.grid_blocks.div_ceil(self.num_sms);
        let blocks_per_sm = hw_limit.min(by_grid).max(u32::from(lc.grid_blocks > 0));
        let limiter = if by_grid < hw_limit {
            OccLimiter::GridSize
        } else if hw_limit == by_warps {
            OccLimiter::Warps
        } else if hw_limit == by_regs {
            OccLimiter::Registers
        } else if hw_limit == by_smem {
            OccLimiter::SharedMem
        } else {
            OccLimiter::Blocks
        };
        let warps_per_sm = (blocks_per_sm * wpb).min(self.max_warps_per_sm());
        Occupancy {
            blocks_per_sm,
            warps_per_sm,
            warps_per_scheduler: warps_per_sm as f64 / self.schedulers_per_sm as f64,
            limiter,
            ratio: warps_per_sm as f64 / self.max_warps_per_sm() as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_occupancy() {
        let a = ArchConfig::volta_v100();
        // 2048 threads per SM at 1024 threads/block needs 2 blocks/SM; the
        // grid must supply 160 blocks.
        let lc = LaunchConfig { regs_per_thread: 16, ..LaunchConfig::new(160, 1024) };
        let o = a.occupancy(&lc);
        assert_eq!(o.blocks_per_sm, 2);
        assert_eq!(o.warps_per_sm, 64);
        assert_eq!(o.warps_per_scheduler, 16.0);
        assert_eq!(o.ratio, 1.0);
    }

    #[test]
    fn grid_limited_occupancy() {
        let a = ArchConfig::volta_v100();
        // 16 blocks on 80 SMs: most SMs idle — the PeleC case.
        let o = a.occupancy(&LaunchConfig::new(16, 256));
        assert_eq!(o.blocks_per_sm, 1);
        assert_eq!(o.limiter, OccLimiter::GridSize);
    }

    #[test]
    fn register_limited_occupancy() {
        let a = ArchConfig::volta_v100();
        let lc = LaunchConfig { regs_per_thread: 255, ..LaunchConfig::new(10_000, 1024) };
        let o = a.occupancy(&lc);
        assert_eq!(o.limiter, OccLimiter::Registers);
        assert!(o.warps_per_sm < 64);
    }

    #[test]
    fn tiny_blocks_starve_schedulers() {
        let a = ArchConfig::volta_v100();
        // The gaussian Fan2 case: 16-thread blocks → 1 warp per block; the
        // 32-block slot limit caps warps per SM at 32.
        let o = a.occupancy(&LaunchConfig::new(100_000, 16));
        assert_eq!(o.warps_per_sm, 32);
        assert_eq!(o.limiter, OccLimiter::Blocks);
        assert!(o.ratio < 0.6);
    }
}
