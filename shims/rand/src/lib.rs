//! A std-only stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the tiny slice of the `rand` API the benchmark-suite generators use:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] (half-open and inclusive integer/float ranges) and
//! [`Rng::gen_bool`].
//!
//! The generator is SplitMix64 feeding xoshiro256++ — statistically fine
//! for synthetic workload inputs and fully deterministic, which is all
//! the suite needs ("all inputs are deterministic (fixed seeds)"). The
//! streams differ from upstream `StdRng` (ChaCha12); nothing in the
//! workspace depends on the exact values, only on determinism.

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// RNG namespace, mirroring `rand::rngs`.
pub mod rngs {
    /// The standard RNG (here: xoshiro256++ seeded via SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

pub use rngs::StdRng;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        StdRng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }
}

impl StdRng {
    /// The next 64 uniform bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// A uniform draw from `[lo, hi)`.
    fn sample_half_open(rng: &mut StdRng, lo: Self, hi: Self) -> Self;
    /// A uniform draw from `[lo, hi]`.
    fn sample_inclusive(rng: &mut StdRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut StdRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                // Multiply-shift bounded draw; span is far below 2^63 in
                // all workspace uses, so the tiny modulo bias of the
                // 128-bit multiply-high is irrelevant here.
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(draw as $t)
            }
            fn sample_inclusive(rng: &mut StdRng, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every draw is valid.
                    return rng.next_u64() as $t;
                }
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(draw as $t)
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut StdRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in gen_range");
                // 53 uniform bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = lo as f64 + unit * (hi as f64 - lo as f64);
                if v as $t >= hi { lo } else { v as $t }
            }
            fn sample_inclusive(rng: &mut StdRng, lo: Self, hi: Self) -> Self {
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
                (lo as f64 + unit * (hi as f64 - lo as f64)) as $t
            }
        }
    )*};
}

impl_sample_float!(f32, f64);

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample(self, rng: &mut StdRng) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut StdRng) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut StdRng) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// The user-facing generator trait, mirroring `rand::Rng`.
pub trait Rng {
    /// A uniform draw from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u32 = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u32 = r.gen_range(1..=4);
            assert!((1..=4).contains(&w));
            let f: f32 = r.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.9)).count();
        assert!((8800..=9200).contains(&hits), "got {hits}");
    }
}
