//! Integration tests for the parallel analysis pipeline: deterministic
//! batch ordering, artifact-cache reuse, and agreement between the batch
//! and single-run paths.

use gpa::pipeline::{AnalysisJob, Session};
use std::sync::Arc;

fn jobs3() -> Vec<AnalysisJob> {
    vec![
        AnalysisJob::new("rodinia/hotspot", 0),
        AnalysisJob::new("rodinia/gaussian", 0),
        AnalysisJob::new("rodinia/nw", 0),
    ]
}

#[test]
fn batch_results_follow_job_order() {
    let session = Session::test();
    let jobs = jobs3();
    let outcomes = session.run_batch(&jobs);
    assert_eq!(outcomes.len(), jobs.len());
    for (job, out) in jobs.iter().zip(&outcomes) {
        let out = out.as_ref().expect("app runs");
        assert_eq!(&out.job, job, "result {job} in input position");
        assert!(out.profile.total_samples > 0, "{job} sampled");
        assert!(out.cycles > 0);
    }
}

#[test]
fn batch_is_deterministic_across_runs() {
    let session = Session::test();
    let jobs = jobs3();
    let first = session.run_batch(&jobs);
    let second = session.run_batch(&jobs);
    for (a, b) in first.iter().zip(&second) {
        let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.profile, b.profile, "identical profiles run to run");
        assert_eq!(a.report, b.report, "identical advice run to run");
    }
}

#[test]
fn repeated_modules_share_one_cached_artifact() {
    let session = Session::test();
    // The same app/variant three times plus one distinct app.
    let jobs = vec![
        AnalysisJob::new("rodinia/kmeans", 0),
        AnalysisJob::new("rodinia/kmeans", 0),
        AnalysisJob::new("rodinia/sradv1", 0),
        AnalysisJob::new("rodinia/kmeans", 0),
    ];
    let outcomes: Vec<_> = session.run_batch(&jobs).into_iter().map(|r| r.expect("runs")).collect();
    assert!(Arc::ptr_eq(&outcomes[0].artifacts, &outcomes[1].artifacts), "same module built once");
    assert!(Arc::ptr_eq(&outcomes[0].artifacts, &outcomes[3].artifacts));
    assert!(!Arc::ptr_eq(&outcomes[0].artifacts, &outcomes[2].artifacts));
    assert_eq!(session.cached_modules(), 2, "two distinct modules in the cache");
}

#[test]
fn batch_agrees_with_single_run_and_serial_paths() {
    let session = Session::test();
    let jobs = jobs3();
    let batch = session.run_batch(&jobs);
    let serial = session.run_batch_serial(&jobs);
    for (job, (b, s)) in jobs.iter().zip(batch.iter().zip(&serial)) {
        let (b, s) = (b.as_ref().unwrap(), s.as_ref().unwrap());
        let single = session.run_one(job).expect("single path runs");
        assert_eq!(b.cycles, single.cycles, "{job}: batch cycles == single-run cycles");
        assert_eq!(b.profile, single.profile, "{job}: identical profile");
        assert_eq!(b.report, single.report, "{job}: identical advice");
        assert_eq!(s.cycles, single.cycles, "{job}: serial batch agrees too");
    }
}

#[test]
fn faults_are_isolated_to_their_job() {
    let session = Session::test();
    let jobs = vec![
        AnalysisJob::new("rodinia/hotspot", 0),
        AnalysisJob::new("no/such-app", 0),
        AnalysisJob::new("rodinia/nw", 0),
    ];
    let results = session.run_batch(&jobs);
    assert!(results[0].is_ok());
    let err = results[1].as_ref().unwrap_err();
    assert_eq!(err.job, jobs[1]);
    assert!(err.message.contains("unknown app"));
    assert!(results[2].is_ok(), "later jobs unaffected by the fault");
}

#[test]
fn outcome_json_is_machine_readable() {
    let session = Session::test();
    let out = session.run_one(&AnalysisJob::new("rodinia/hotspot", 0)).expect("runs");
    let doc = gpa::json::Json::parse(&out.to_json().pretty()).expect("round-trips");
    assert_eq!(doc.field("app").unwrap().as_str().unwrap(), "rodinia/hotspot");
    assert_eq!(doc.field("cycles").unwrap().as_u64().unwrap(), out.cycles);
    let advice = doc.field("advice").unwrap().as_array().unwrap();
    assert_eq!(advice.len(), out.report.items.len());
    if let Some(first) = advice.first() {
        assert_eq!(first.field("rank").unwrap().as_u64().unwrap(), 1);
    }
}
