//! Machine descriptions.

use gpa_isa::Pipe;

/// A GPU machine description.
///
/// Defaults model an NVIDIA Volta V100; [`ArchConfig::small`] produces a
/// scaled-down part with the same per-SM shape (4 schedulers, same
/// latencies) so unit tests and experiments can run quickly while
/// preserving blocks-vs-SMs ratios.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchConfig {
    /// Human-readable name.
    pub name: String,
    /// Streaming multiprocessors on the device.
    pub num_sms: u32,
    /// Warp schedulers (sub-partitions) per SM.
    pub schedulers_per_sm: u32,
    /// Threads per warp.
    pub warp_size: u32,
    /// Maximum resident warps per scheduler (64 per SM on Volta).
    pub max_warps_per_scheduler: u32,
    /// Maximum threads per block.
    pub max_threads_per_block: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// 32-bit registers per SM.
    pub registers_per_sm: u32,
    /// Shared memory per SM in bytes.
    pub shared_mem_per_sm: u32,

    /// Global-memory latency on an L2 hit (cycles).
    pub lat_global_l2: u32,
    /// Global-memory latency on a DRAM access (cycles).
    pub lat_global_dram: u32,
    /// Shared-memory load latency (cycles).
    pub lat_shared: u32,
    /// Constant-cache load latency (cycles).
    pub lat_constant: u32,
    /// Local-memory (spill) latency — mostly L1-resident (cycles).
    pub lat_local: u32,
    /// Extra cycles for each additional memory transaction of an
    /// uncoalesced warp access.
    pub lat_per_extra_transaction: u32,

    /// L2 cache size in bytes (shared across SMs).
    pub l2_size: u32,
    /// L2 line size in bytes.
    pub l2_line: u32,
    /// Instruction-cache size per SM in bytes.
    pub icache_size: u32,
    /// Instruction-cache line size in bytes.
    pub icache_line: u32,
    /// Stall cycles on an instruction-cache miss.
    pub lat_ifetch_miss: u32,
    /// Taken-branch front-end bubble in cycles (fetch redirect).
    pub lat_branch_redirect: u32,

    /// Maximum in-flight memory requests per SM before the LSU back-
    /// pressures issue (memory-throttle stalls).
    pub max_mem_inflight_per_sm: u32,
}

impl ArchConfig {
    /// A V100-like configuration.
    pub fn volta_v100() -> Self {
        ArchConfig {
            name: "volta-v100".into(),
            num_sms: 80,
            schedulers_per_sm: 4,
            warp_size: 32,
            max_warps_per_scheduler: 16,
            max_threads_per_block: 1024,
            max_blocks_per_sm: 32,
            registers_per_sm: 65536,
            shared_mem_per_sm: 96 * 1024,
            lat_global_l2: 220,
            lat_global_dram: 450,
            lat_shared: 25,
            lat_constant: 30,
            lat_local: 40,
            lat_per_extra_transaction: 4,
            l2_size: 6 * 1024 * 1024,
            l2_line: 64,
            icache_size: 12 * 1024,
            icache_line: 256,
            lat_ifetch_miss: 40,
            lat_branch_redirect: 4,
            max_mem_inflight_per_sm: 256,
        }
    }

    /// A scaled-down Volta with `num_sms` SMs for fast experiments.
    pub fn small(num_sms: u32) -> Self {
        ArchConfig { name: format!("small-volta-{num_sms}sm"), num_sms, ..Self::volta_v100() }
    }

    /// Maximum resident warps per SM.
    pub fn max_warps_per_sm(&self) -> u32 {
        self.schedulers_per_sm * self.max_warps_per_scheduler
    }

    /// Issue interval (cycles between issues) of a pipe per scheduler.
    ///
    /// One warp instruction occupies its pipe for this many cycles; a
    /// second instruction for a busy pipe reports a *pipe busy* stall.
    pub fn pipe_interval(&self, pipe: Pipe) -> u32 {
        match pipe {
            // 16 FP32/INT lanes per scheduler → a 32-thread warp needs 2
            // cycles of the pipe.
            Pipe::Alu | Pipe::Fma => 2,
            // 8 FP64 lanes per scheduler on V100 → 4 cycles.
            Pipe::Fp64 => 4,
            // 4 SFU lanes per scheduler → 8 cycles.
            Pipe::Sfu => 8,
            // LSU accepts one warp access per scheduler every 4 cycles.
            Pipe::Lsu => 4,
            Pipe::Branch | Pipe::Misc => 2,
        }
    }
}

impl Default for ArchConfig {
    fn default() -> Self {
        Self::volta_v100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_shape() {
        let a = ArchConfig::volta_v100();
        assert_eq!(a.num_sms, 80);
        assert_eq!(a.max_warps_per_sm(), 64);
        assert!(a.pipe_interval(Pipe::Sfu) > a.pipe_interval(Pipe::Fma));
    }

    #[test]
    fn small_preserves_per_sm_shape() {
        let a = ArchConfig::small(4);
        assert_eq!(a.num_sms, 4);
        assert_eq!(a.schedulers_per_sm, 4);
        assert_eq!(a.max_warps_per_sm(), 64);
    }
}
