//! Single-shot runner: build device, set up inputs, profile.
//!
//! These are the low-level, one-kernel primitives. Anything running more
//! than one variant — the CLI's `analyze --all`, the Table 3 harness,
//! batch experiments — should go through `gpa-pipeline`'s `Session`,
//! which caches module artifacts and fans out across the worker pool.

use crate::{KernelSpec, Params};
use gpa_arch::ArchConfig;
use gpa_sampling::{KernelProfile, Profiler};
use gpa_sim::{GpuSim, Result, SimConfig};

/// Everything one variant run produces.
pub struct RunOutput {
    /// The PC-sampling profile.
    pub profile: KernelProfile,
    /// Ground-truth kernel cycles.
    pub cycles: u64,
}

/// The simulator configuration the experiment harnesses use.
pub fn sim_config() -> SimConfig {
    SimConfig { sampling_period: 127, ..SimConfig::default() }
}

/// The device configuration for a given parameter scale.
pub fn arch_for(p: &Params) -> ArchConfig {
    ArchConfig::small(p.sms)
}

/// Builds the simulator for a spec (constant bank wired), runs its
/// setup, and returns the armed profiler plus kernel parameters — the
/// glue `run_spec` and `time_spec` share.
pub fn profiler_for(spec: &KernelSpec, arch: &ArchConfig) -> (Profiler, Vec<u8>) {
    let (gpu, params) = armed_gpu_with(spec, arch, sim_config());
    (Profiler::new(gpu), params)
}

/// Arms a device for a spec under an explicit simulator configuration:
/// constant bank wired, setup closure run. Returns the device and the
/// kernel parameters — the one place the arming recipe lives.
pub fn armed_gpu_with(spec: &KernelSpec, arch: &ArchConfig, cfg: SimConfig) -> (GpuSim, Vec<u8>) {
    let mut gpu = GpuSim::new(arch.clone(), cfg);
    if let Some(bank) = &spec.const_bank1 {
        gpu.set_const_bank(1, bank.clone());
    }
    let params = (spec.setup)(&mut gpu);
    (gpu, params)
}

/// Arms a device for a spec under an explicit simulator configuration
/// and launches it — the shared glue for harnesses that need a raw
/// [`gpa_sim::LaunchResult`] (e.g. the dense-vs-event differential
/// tests and benches).
///
/// # Errors
///
/// Propagates simulator errors (faults, cycle limit).
pub fn launch_spec_with(
    spec: &KernelSpec,
    arch: &ArchConfig,
    cfg: SimConfig,
) -> Result<gpa_sim::LaunchResult> {
    let (mut gpu, params) = armed_gpu_with(spec, arch, cfg);
    gpu.launch(&spec.module, &spec.entry, &spec.launch, &params)
}

/// [`launch_spec_with`] with a caller-supplied [`gpa_sim::SampleSink`]
/// (e.g. a `Vec<RawSample>` buffering the raw stream for differential
/// checks); the result's own sample set stays empty.
///
/// # Errors
///
/// Propagates simulator errors (faults, cycle limit).
pub fn launch_spec_with_sink(
    spec: &KernelSpec,
    arch: &ArchConfig,
    cfg: SimConfig,
    sink: &mut dyn gpa_sim::SampleSink,
) -> Result<gpa_sim::LaunchResult> {
    let (mut gpu, params) = armed_gpu_with(spec, arch, cfg);
    gpu.launch_with_sink(&spec.module, &spec.entry, &spec.launch, &params, sink)
}

/// Runs one kernel variant with sampling and returns profile + cycles.
///
/// # Errors
///
/// Propagates simulator errors (faults, cycle limit).
pub fn run_spec(spec: &KernelSpec, arch: &ArchConfig) -> Result<RunOutput> {
    let (mut profiler, params) = profiler_for(spec, arch);
    let (profile, result) = profiler.profile(&spec.module, &spec.entry, &spec.launch, &params)?;
    Ok(RunOutput { profile, cycles: result.cycles })
}

/// Times a kernel variant without sampling.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn time_spec(spec: &KernelSpec, arch: &ArchConfig) -> Result<u64> {
    let (mut profiler, params) = profiler_for(spec, arch);
    profiler.time_only(&spec.module, &spec.entry, &spec.launch, &params)
}
