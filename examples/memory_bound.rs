//! Memory-hierarchy advice end to end: run the `demo/membound` kernel
//! under the timed L1/L2/shared model, read the coalescing and
//! bank-conflict advice the flat model cannot give, apply both fixes,
//! and measure the achieved speedups.
//!
//! ```sh
//! cargo run --release --example memory_bound
//! ```

use gpa::core::{report, OptimizerId};
use gpa::kernels::{apps::membound, Params};
use gpa::pipeline::Session;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // `demo/membound` is not in the 21-app registry, so build its
    // variants directly and analyze the specs. The hierarchy session is
    // the same device with `MemModel::Hierarchy` switched on — exactly
    // what `gpa analyze --mem-model hierarchy` or a daemon request with
    // `"mem": "hierarchy"` selects.
    let params = Params::full();
    let app = membound::app();
    let session = Session::for_params(params).with_hierarchy();

    // Profile the baseline: a 128-byte-strided global walk staged
    // through one shared-memory bank.
    let run = session.analyze_spec((app.build)(0, &params))?;
    println!("baseline: {} cycles\n", run.cycles);
    print!("{}", report::render(&run.report, 3));

    let coalescing =
        run.report.item(OptimizerId::MemoryCoalescing).map_or(1.0, |i| i.estimated_speedup);
    let conflicts =
        run.report.item(OptimizerId::BankConflictResolution).map_or(1.0, |i| i.estimated_speedup);

    // Stage 1: coalesce the global walk (consecutive lanes, adjacent
    // words).
    let stage1 = session.time_spec(&(app.build)(1, &params))?;
    println!("coalesced: {stage1} cycles");
    println!(
        "  achieved {:.2}x, GPA estimated {coalescing:.2}x\n",
        run.cycles as f64 / stage1 as f64
    );

    // Stage 2: also spread the shared staging over distinct banks.
    let stage2 = session.time_spec(&(app.build)(2, &params))?;
    println!("conflict-free: {stage2} cycles");
    println!(
        "  achieved {:.2}x over stage 1, GPA estimated {conflicts:.2}x",
        stage1 as f64 / stage2 as f64
    );

    // The flat model times the same kernels without the hierarchy's
    // stall taxonomy — its report never mentions the memory advisors.
    let flat = Session::for_params(params);
    let flat_run = flat.analyze_spec((app.build)(0, &params))?;
    assert!(flat_run.report.item(OptimizerId::MemoryCoalescing).is_none());
    assert!(flat_run.report.item(OptimizerId::BankConflictResolution).is_none());
    println!("\nflat model: {} cycles, no memory-hierarchy advice (by design)", flat_run.cycles);
    Ok(())
}
