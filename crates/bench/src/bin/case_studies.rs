//! Reproduces the paper's **Section 7 case studies**: the staged
//! optimization sequences on ExaTENSOR, Quicksilver, PeleC, and Minimod,
//! printing the top advice at each stage and the speedup of applying it.

use gpa_bench::{print_table3_header, print_table3_row, run_apps_parallel};
use gpa_kernels::apps;
use gpa_pipeline::Session;

fn main() {
    let session = Session::full();
    let studies = [
        apps::exatensor::app(),
        apps::quicksilver::app(),
        apps::pelec::app(),
        apps::minimod::app(),
    ];
    print_table3_header();
    let runs = run_apps_parallel(&session, &studies);
    for res in &runs {
        match res {
            Ok(run) => run.rows.iter().for_each(print_table3_row),
            Err(e) => println!("ERROR: {e}"),
        }
    }
    // The Table 3 pass already advised every stage variant; reuse those
    // reports instead of re-simulating.
    println!("\nTop advice per stage:");
    for (app, res) in studies.iter().zip(&runs) {
        let Ok(run) = res else { continue };
        for (v, report) in run.reports.iter().enumerate() {
            if let Some(top) = report.top() {
                println!(
                    "  {} (variant {v}): {} — estimated {:.2}x",
                    app.name,
                    top.optimizer(),
                    top.estimated_speedup
                );
            }
        }
    }
}
