//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! Every frame is one line of compact JSON (strings escape control
//! characters, so a frame never contains a raw newline). Requests carry
//! an `"op"` discriminator; responses carry `"ok"` plus either a
//! `"result"` payload or an `"error"` message. The full schema lives in
//! `docs/protocol.md`.
//!
//! `analyze`/`analyze_profile` requests negotiate the **advice schema
//! version** per call: `"schema": 2` selects the structured v2 report
//! ([`gpa_core::schema`]); absent (or `1`) keeps the flat v1 body, so
//! pre-v2 clients keep working unchanged. The same requests also carry
//! optional [`AdviceRequest`] options (`top`, `categories`,
//! `optimizers`, `min_speedup`, `hotspots`, `evidence`).

use gpa_core::{report, schema, AdviceReport, AdviceRequest, OptimizerCategory, OptimizerId};
use gpa_json::Json;
use gpa_pipeline::{AnalysisError, AnalysisJob, AnalysisOutcome};
use gpa_sampling::KernelProfile;

/// The default daemon address (`gpa serve` / `gpa request` without
/// `--addr`).
pub const DEFAULT_ADDR: &str = "127.0.0.1:7070";

/// Advice schema versions the daemon can answer with.
pub const SCHEMA_VERSIONS: [u32; 2] = [1, 2];

/// The schema version used when a request does not negotiate one —
/// v1, so pre-v2 clients see unchanged bodies.
pub const DEFAULT_SCHEMA: u32 = 1;

/// Hard cap on one request line. Anything longer is rejected and the
/// connection closed: past this point the stream cannot be resynced.
pub const MAX_REQUEST_BYTES: u64 = 8 * 1024 * 1024;

/// Upper bound on the diagnostic `sleep` op, so a stray request cannot
/// park a worker indefinitely.
pub const MAX_SLEEP_MS: u64 = 5_000;

/// Upper bound on `analyze`'s `repeat` option: each repeat is a full
/// kernel re-simulation, so an uncapped value would let one frame pin a
/// worker indefinitely (the compute analogue of [`MAX_SLEEP_MS`]).
/// Sampling phases spread across one period, so repeats beyond the
/// period add nothing anyway.
pub const MAX_REPEAT: u32 = 64;

/// How many advice items the rendered report text includes (the CLI's
/// `analyze` default).
pub const REPORT_TOP: usize = 5;

/// Anti-entropy metadata piggybacked on cluster-internal frames: the
/// sender's roster epoch (`"epoch"`) and advertised address
/// (`"from"`). Both optional — plain client traffic never carries
/// them — and never part of a content address (they do not shape the
/// body). A receiver that is *ahead* of the sender answers normally
/// and rejects nothing; a receiver *behind* the sender schedules a
/// roster refresh from `from`; a forwarded analyze whose sender is
/// behind gets a [`stale_epoch_frame`] instead of a wrong-owner
/// answer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PeerMeta {
    /// The sender's roster epoch.
    pub epoch: Option<u64>,
    /// The sender's advertised address, for refresh callbacks.
    pub from: Option<String>,
}

impl PeerMeta {
    /// Parses the optional anti-entropy fields of a frame.
    fn parse(doc: &Json) -> Result<PeerMeta, String> {
        let mut meta = PeerMeta::default();
        if let Some(v) = doc.get("epoch") {
            meta.epoch = Some(v.as_u64().map_err(|_| "`epoch` must be an unsigned integer")?);
        }
        if let Some(v) = doc.get("from") {
            meta.from = Some(v.as_str().map_err(|_| "`from` must be a string")?.to_string());
        }
        Ok(meta)
    }

    /// Appends the set fields to a wire frame object.
    fn extend_wire(&self, mut doc: Json) -> Json {
        if let Some(epoch) = self.epoch {
            doc = doc.with("epoch", epoch);
        }
        if let Some(from) = &self.from {
            doc = doc.with("from", from.clone());
        }
        doc
    }
}

/// Per-request advice options carried on the wire: the negotiated
/// schema version, the profiling repeat count, plus the
/// [`AdviceRequest`] the advisor runs with.
#[derive(Debug, Clone, PartialEq)]
pub struct WireOptions {
    /// Advice schema version for the response body (1 or 2).
    pub schema: u32,
    /// Profiling repeat count for `analyze`: the daemon replays the
    /// launch this many times with shifted sampling phases and advises
    /// on the merged profile (1 = plain single-launch profiling).
    pub repeat: u32,
    /// Cluster-internal marker (`"fwd": true` on the wire): this
    /// request was already routed by a peer shard, so the receiver must
    /// answer it locally and never forward it again — the loop guard
    /// for transiently disagreeing rings. Not part of the content
    /// address (it does not shape the body).
    pub forwarded: bool,
    /// Anti-entropy metadata on forwarded frames (sender epoch and
    /// address). Like `forwarded`, never part of the content address.
    pub meta: PeerMeta,
    /// Memory timing model for the simulation (`"mem": "hierarchy"` on
    /// the wire): `true` runs the kernel against the timed L1/L2/shared
    /// servers instead of the flat latency table. Part of the content
    /// address — the two models produce different profiles.
    pub hierarchy: bool,
    /// Advisor options for this call.
    pub request: AdviceRequest,
}

impl Default for WireOptions {
    fn default() -> Self {
        WireOptions {
            schema: DEFAULT_SCHEMA,
            repeat: 1,
            forwarded: false,
            meta: PeerMeta::default(),
            hierarchy: false,
            request: AdviceRequest::default(),
        }
    }
}

impl WireOptions {
    /// Options selecting the v2 schema with default advisor behavior.
    pub fn v2() -> Self {
        WireOptions { schema: 2, ..WireOptions::default() }
    }

    /// Parses the optional advice-option fields of an
    /// `analyze`/`analyze_profile` request.
    fn parse(doc: &Json) -> Result<WireOptions, String> {
        let mut options = WireOptions::default();
        if let Some(v) = doc.get("schema") {
            options.schema = parse_schema(v)?;
        }
        if let Some(v) = doc.get("repeat") {
            let n = v.as_u64().map_err(|_| "`repeat` must be an unsigned integer")?;
            if n == 0 {
                return Err("`repeat` must be at least 1".to_string());
            }
            // Each repeat re-simulates the kernel; cap what one frame
            // can make a worker do.
            if n > u64::from(MAX_REPEAT) {
                return Err(format!("`repeat` exceeds the limit of {MAX_REPEAT}"));
            }
            options.repeat = n as u32;
        }
        if let Some(v) = doc.get("fwd") {
            options.forwarded = v.as_bool().map_err(|_| "`fwd` must be a boolean")?;
        }
        if let Some(v) = doc.get("mem") {
            let s = v.as_str().map_err(|_| "`mem` must be a string")?;
            options.hierarchy = match s {
                "flat" => false,
                "hierarchy" => true,
                other => {
                    return Err(format!(
                        "unknown memory model `{other}` (expected flat or hierarchy)"
                    ))
                }
            };
        }
        options.meta = PeerMeta::parse(doc)?;
        let mut request = AdviceRequest::default();
        if let Some(v) = doc.get("top") {
            let top = v.as_u64().map_err(|_| "`top` must be an unsigned integer")?;
            request.top = Some(usize::try_from(top).map_err(|_| "`top` out of range")?);
        }
        if let Some(v) = doc.get("categories") {
            for s in strings_of(v, "categories")? {
                let cat = OptimizerCategory::from_slug(&s)
                    .ok_or_else(|| format!("unknown category `{s}`"))?;
                request.categories.push(cat);
            }
        }
        if let Some(v) = doc.get("optimizers") {
            for s in strings_of(v, "optimizers")? {
                let id =
                    OptimizerId::from_name(&s).ok_or_else(|| format!("unknown optimizer `{s}`"))?;
                request.optimizers.push(id);
            }
        }
        if let Some(v) = doc.get("min_speedup") {
            request.min_speedup = v.as_f64().map_err(|_| "`min_speedup` must be a number")?;
        }
        if let Some(v) = doc.get("hotspots") {
            let n = v.as_u64().map_err(|_| "`hotspots` must be an unsigned integer")?;
            request.hotspots = usize::try_from(n).map_err(|_| "`hotspots` out of range")?;
        }
        if let Some(v) = doc.get("evidence") {
            request.evidence = v.as_bool().map_err(|_| "`evidence` must be a boolean")?;
        }
        options.request = request;
        Ok(options)
    }

    /// Appends the non-default option fields to a wire frame object.
    fn extend_wire(&self, mut doc: Json) -> Json {
        let defaults = AdviceRequest::default();
        if self.schema != DEFAULT_SCHEMA {
            doc = doc.with("schema", self.schema);
        }
        if self.repeat != 1 {
            doc = doc.with("repeat", self.repeat);
        }
        if self.hierarchy {
            doc = doc.with("mem", "hierarchy");
        }
        let r = &self.request;
        if let Some(top) = r.top {
            doc = doc.with("top", top);
        }
        if !r.categories.is_empty() {
            doc = doc.with(
                "categories",
                Json::Arr(r.categories.iter().map(|c| c.slug().into()).collect()),
            );
        }
        if !r.optimizers.is_empty() {
            doc = doc.with(
                "optimizers",
                Json::Arr(r.optimizers.iter().map(|o| o.slug().into()).collect()),
            );
        }
        if r.min_speedup != defaults.min_speedup {
            doc = doc.with("min_speedup", r.min_speedup);
        }
        if r.hotspots != defaults.hotspots {
            doc = doc.with("hotspots", r.hotspots);
        }
        if r.evidence != defaults.evidence {
            doc = doc.with("evidence", r.evidence);
        }
        if self.forwarded {
            doc = doc.with("fwd", true);
        }
        self.meta.extend_wire(doc)
    }

    /// A canonical rendering of everything in the options that shapes a
    /// response body — the options segment of the content address.
    /// Filter lists are sorted and deduplicated (membership filters are
    /// order-insensitive), so semantically identical requests share one
    /// store entry.
    fn cache_segment(&self) -> String {
        let r = &self.request;
        let mut cats: Vec<&str> = r.categories.iter().map(|c| c.slug()).collect();
        cats.sort_unstable();
        cats.dedup();
        let mut opts: Vec<&str> = r.optimizers.iter().map(|o| o.slug()).collect();
        opts.sort_unstable();
        opts.dedup();
        let mut seg = format!(
            "s{}|r{}|t{}|c{}|o{}|m{}|h{}|e{}",
            self.schema,
            self.repeat,
            r.top.map_or_else(|| "-".to_string(), |t| t.to_string()),
            cats.join(","),
            opts.join(","),
            r.min_speedup,
            r.hotspots,
            u8::from(r.evidence),
        );
        // Appended (rather than a fixed field) so every pre-existing
        // flat-model content address stays byte-identical.
        if self.hierarchy {
            seg.push_str("|Mh");
        }
        seg
    }
}

/// Parses a schema version: the integers 1/2 or the strings "v1"/"v2".
fn parse_schema(v: &Json) -> Result<u32, String> {
    let n = match v {
        Json::Str(s) => match s.as_str() {
            "v1" | "1" => 1,
            "v2" | "2" => 2,
            other => return Err(format!("unknown schema `{other}` (expected v1 or v2)")),
        },
        other => {
            let n = other.as_u64().map_err(|_| "`schema` must be 1, 2, \"v1\" or \"v2\"")?;
            u32::try_from(n).map_err(|_| "`schema` out of range")?
        }
    };
    if SCHEMA_VERSIONS.contains(&n) {
        Ok(n)
    } else {
        Err(format!("unsupported schema version {n} (supported: 1, 2)"))
    }
}

/// A string or an array of strings.
fn strings_of(v: &Json, field: &str) -> Result<Vec<String>, String> {
    match v {
        Json::Str(s) => Ok(vec![s.clone()]),
        Json::Arr(items) => items
            .iter()
            .map(|i| {
                i.as_str()
                    .map(str::to_string)
                    .map_err(|_| format!("`{field}` entries must be strings"))
            })
            .collect(),
        _ => Err(format!("`{field}` must be a string or an array of strings")),
    }
}

/// A parsed client request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Profile `(app, variant)` in the simulator and advise on it.
    Analyze {
        /// The app/variant to analyze.
        job: AnalysisJob,
        /// Negotiated schema version and advisor options.
        options: WireOptions,
    },
    /// Advise on a client-submitted profile (no simulation): the
    /// decoupled path a real CUPTI dump would take.
    AnalyzeProfile {
        /// The app/variant whose module artifacts to match against.
        job: AnalysisJob,
        /// The submitted sampling profile.
        profile: Box<KernelProfile>,
        /// Canonical (compact) rendering of the submitted profile,
        /// kept for content-addressing.
        canon: String,
        /// Negotiated schema version and advisor options.
        options: WireOptions,
    },
    /// Opens a chunked profile upload for `(app, variant)`: large
    /// client profiles stream in as several `profile_chunk` frames
    /// (each under the request size cap) instead of one giant
    /// `analyze_profile` frame. Answered with an `upload_id` scoped to
    /// this connection.
    ProfileBegin {
        /// The app/variant whose module artifacts to match against.
        job: AnalysisJob,
        /// Negotiated schema version and advisor options for the final
        /// advice.
        options: WireOptions,
    },
    /// Adds one profile chunk to an open upload. Chunks are full (but
    /// typically partial-coverage) `KernelProfile` documents; the daemon
    /// folds them together with `KernelProfile::merge`, so only the
    /// running merge is retained server-side.
    ProfileChunk {
        /// The id `profile_begin` returned.
        upload_id: u64,
        /// This chunk's profile document.
        profile: Box<KernelProfile>,
    },
    /// Closes an upload: the merged profile is advised on exactly like
    /// an `analyze_profile` submission of the merged document — same
    /// response body, same content-addressed cache entry.
    ProfileEnd {
        /// The id `profile_begin` returned.
        upload_id: u64,
    },
    /// Discards an open upload without analyzing it, freeing its
    /// per-connection slot — the recovery path when a chunk was
    /// rejected mid-upload.
    ProfileAbort {
        /// The id `profile_begin` returned.
        upload_id: u64,
    },
    /// Cluster-internal: look up a content address in the receiver's
    /// *local* report store (memory or disk tier only — never
    /// forwarded, never computed). A restarted shard uses this against
    /// its ring successor to warm owned entries from the replica set
    /// instead of recomputing.
    StoreGet {
        /// The canonical content address (a [`Request::cache_key`]).
        key: String,
    },
    /// Cluster-internal: admit a replicated response body into the
    /// receiver's report store. Sent by a key's owner to its ring
    /// successor after computing (and by the handoff scan after a
    /// membership change), so the right shard holds a warm copy.
    /// Replica admissions never re-replicate (no cascade).
    StorePut {
        /// The canonical content address (a [`Request::cache_key`]).
        key: String,
        /// The compact response body to store.
        body: String,
        /// The sender's epoch/address, for lazy anti-entropy.
        meta: PeerMeta,
    },
    /// Membership: add `addr` to the receiver's roster (bumping the
    /// epoch if it was absent) and answer with the receiver's full
    /// roster. A starting shard announces itself through one seed
    /// member with this op; the rest of the fleet learns lazily from
    /// epoch-tagged peer traffic.
    Join {
        /// The joining shard's advertised address.
        addr: String,
        /// The sender's epoch/address, for lazy anti-entropy.
        meta: PeerMeta,
    },
    /// Membership: remove a member from the roster. Without `addr` (or
    /// naming the receiver itself) this asks the *receiver* to drain:
    /// it leaves its own roster, hands its store slice off to the new
    /// owners, announces the departure, and keeps serving as a
    /// forwarding-only non-member. With a third-party `addr` it merely
    /// records that member's departure.
    Leave {
        /// The departing member (`None` = the receiver itself).
        addr: Option<String>,
        /// The sender's epoch/address, for lazy anti-entropy.
        meta: PeerMeta,
    },
    /// Membership: the receiver's roster view — epoch, members,
    /// successor, drain state. The anti-entropy refresh call, and an
    /// operator's ring inspector (`gpa request ring`).
    RingStatus,
    /// Daemon metrics snapshot.
    Status,
    /// Stop accepting work and exit cleanly.
    Shutdown,
    /// Diagnostic: occupy a worker for `ms` milliseconds (used by the
    /// backpressure tests and the throughput bench).
    Sleep {
        /// Sleep duration in milliseconds (capped at [`MAX_SLEEP_MS`]).
        ms: u64,
    },
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// A human-readable message on malformed JSON, a missing/unknown
    /// `op`, or invalid op arguments.
    pub fn parse(line: &str) -> Result<Request, String> {
        let doc = Json::parse(line).map_err(|e| format!("malformed request: {e}"))?;
        let op = doc
            .get("op")
            .ok_or("missing `op` field")?
            .as_str()
            .map_err(|_| "`op` must be a string")?;
        match op {
            "analyze" => {
                Ok(Request::Analyze { job: job_from(&doc)?, options: WireOptions::parse(&doc)? })
            }
            "analyze_profile" => {
                // Cheap validation (job, options) before the profile
                // document, which can be megabytes.
                let job = job_from(&doc)?;
                let options = no_repeat(WireOptions::parse(&doc)?, op)?;
                let profile_doc = doc.get("profile").ok_or("missing `profile` field")?;
                let profile = KernelProfile::from_doc(profile_doc)
                    .map_err(|e| format!("bad `profile`: {e}"))?;
                Ok(Request::AnalyzeProfile {
                    job,
                    profile: Box::new(profile),
                    canon: profile_doc.compact(),
                    options,
                })
            }
            "profile_begin" => Ok(Request::ProfileBegin {
                job: job_from(&doc)?,
                options: no_repeat(WireOptions::parse(&doc)?, op)?,
            }),
            "profile_chunk" => {
                let upload_id = upload_id_from(&doc)?;
                let profile_doc = doc.get("profile").ok_or("missing `profile` field")?;
                let profile = KernelProfile::from_doc(profile_doc)
                    .map_err(|e| format!("bad `profile`: {e}"))?;
                Ok(Request::ProfileChunk { upload_id, profile: Box::new(profile) })
            }
            "profile_end" => Ok(Request::ProfileEnd { upload_id: upload_id_from(&doc)? }),
            "profile_abort" => Ok(Request::ProfileAbort { upload_id: upload_id_from(&doc)? }),
            "store_get" => Ok(Request::StoreGet { key: key_from(&doc)? }),
            "store_put" => {
                let key = key_from(&doc)?;
                // The body is re-rendered compactly; compact JSON
                // round-trips byte-identically (gpa-json's proptests),
                // so the admitted replica equals the owner's bytes.
                let body = doc.get("body").ok_or("missing `body` field")?.compact();
                Ok(Request::StorePut { key, body, meta: PeerMeta::parse(&doc)? })
            }
            "join" => {
                let addr = doc
                    .get("addr")
                    .ok_or("missing `addr` field")?
                    .as_str()
                    .map_err(|_| "`addr` must be a string")?
                    .to_string();
                Ok(Request::Join { addr, meta: PeerMeta::parse(&doc)? })
            }
            "leave" => {
                let addr = match doc.get("addr") {
                    Some(v) => Some(v.as_str().map_err(|_| "`addr` must be a string")?.to_string()),
                    None => None,
                };
                Ok(Request::Leave { addr, meta: PeerMeta::parse(&doc)? })
            }
            "ring_status" => Ok(Request::RingStatus),
            "status" => Ok(Request::Status),
            "shutdown" => Ok(Request::Shutdown),
            "sleep" => {
                let ms = match doc.get("ms") {
                    Some(v) => v.as_u64().map_err(|_| "`ms` must be an unsigned integer")?,
                    None => 0,
                };
                Ok(Request::Sleep { ms: ms.min(MAX_SLEEP_MS) })
            }
            other => Err(format!("unknown op `{other}`")),
        }
    }

    /// The op name (for metrics and logs).
    pub fn op(&self) -> &'static str {
        match self {
            Request::Analyze { .. } => "analyze",
            Request::AnalyzeProfile { .. } => "analyze_profile",
            Request::ProfileBegin { .. } => "profile_begin",
            Request::ProfileChunk { .. } => "profile_chunk",
            Request::ProfileEnd { .. } => "profile_end",
            Request::ProfileAbort { .. } => "profile_abort",
            Request::StoreGet { .. } => "store_get",
            Request::StorePut { .. } => "store_put",
            Request::Join { .. } => "join",
            Request::Leave { .. } => "leave",
            Request::RingStatus => "ring_status",
            Request::Status => "status",
            Request::Shutdown => "shutdown",
            Request::Sleep { .. } => "sleep",
        }
    }

    /// Whether a peer shard already routed this request here (the
    /// receiver must answer locally). Ops without a forwarding path
    /// count as forwarded — they are always handled where they arrive.
    pub fn is_forwarded(&self) -> bool {
        match self {
            Request::Analyze { options, .. } | Request::AnalyzeProfile { options, .. } => {
                options.forwarded
            }
            _ => true,
        }
    }

    /// A copy of this request marked [forwarded](Request::is_forwarded)
    /// — what a shard puts on the wire when relaying to the owner.
    /// Identity for ops that cannot be forwarded.
    pub fn to_forwarded(&self) -> Request {
        let mut request = self.clone();
        match &mut request {
            Request::Analyze { options, .. } | Request::AnalyzeProfile { options, .. } => {
                options.forwarded = true;
            }
            _ => {}
        }
        request
    }

    /// The content-address of a cacheable request: a canonical string
    /// covering everything that determines the response body — including
    /// the negotiated schema and advice options, so a v1 and a v2 client
    /// asking for the same job occupy distinct store entries. `None`
    /// for ops whose responses must not be cached.
    pub fn cache_key(&self) -> Option<String> {
        match self {
            Request::Analyze { job, options } => {
                Some(format!("analyze\0{}\0{}\0{}", job.app, job.variant, options.cache_segment()))
            }
            Request::AnalyzeProfile { job, canon, options, .. } => Some(format!(
                "analyze_profile\0{}\0{}\0{}\0{canon}",
                job.app,
                job.variant,
                options.cache_segment()
            )),
            // Upload ops are connection-stateful; only the *merged*
            // profile is addressable, and `profile_end` reaches the
            // store through the synthesized `analyze_profile` request.
            Request::ProfileBegin { .. }
            | Request::ProfileChunk { .. }
            | Request::ProfileEnd { .. }
            | Request::ProfileAbort { .. } => None,
            // Peer store ops carry a content address as *payload*; they
            // are themselves reads/writes of the store, not cacheable
            // analyses.
            Request::StoreGet { .. } | Request::StorePut { .. } => None,
            // Membership ops mutate/inspect live cluster state.
            Request::Join { .. } | Request::Leave { .. } | Request::RingStatus => None,
            Request::Status | Request::Shutdown | Request::Sleep { .. } => None,
        }
    }

    /// Renders the request as its wire frame (without the trailing
    /// newline). Used by clients; servers only parse. Default options
    /// add no fields, so a default frame is byte-identical to a pre-v2
    /// client's.
    pub fn to_wire(&self) -> String {
        match self {
            Request::Analyze { job, options } => options
                .extend_wire(
                    Json::object()
                        .with("op", "analyze")
                        .with("app", job.app.clone())
                        .with("variant", job.variant),
                )
                .compact(),
            Request::AnalyzeProfile { job, canon, options, .. } => {
                analyze_profile_frame(&job.app, job.variant, canon, options)
            }
            Request::ProfileBegin { job, options } => options
                .extend_wire(
                    Json::object()
                        .with("op", "profile_begin")
                        .with("app", job.app.clone())
                        .with("variant", job.variant),
                )
                .compact(),
            Request::ProfileChunk { upload_id, profile } => {
                profile_chunk_frame(*upload_id, &profile.to_doc().compact())
            }
            Request::ProfileEnd { upload_id } => {
                format!("{{\"op\":\"profile_end\",\"upload_id\":{upload_id}}}")
            }
            Request::ProfileAbort { upload_id } => {
                format!("{{\"op\":\"profile_abort\",\"upload_id\":{upload_id}}}")
            }
            Request::StoreGet { key } => {
                format!("{{\"op\":\"store_get\",\"key\":{}}}", Json::from(key.as_str()).compact())
            }
            Request::StorePut { key, body, meta } => {
                let extra = meta.extend_wire(Json::object()).compact();
                let extra = extra.trim_start_matches('{').trim_end_matches('}');
                let extra = if extra.is_empty() { String::new() } else { format!(",{extra}") };
                format!(
                    "{{\"op\":\"store_put\",\"key\":{},\"body\":{body}{extra}}}",
                    Json::from(key.as_str()).compact()
                )
            }
            Request::Join { addr, meta } => meta
                .extend_wire(Json::object().with("op", "join").with("addr", addr.clone()))
                .compact(),
            Request::Leave { addr, meta } => {
                let mut doc = Json::object().with("op", "leave");
                if let Some(addr) = addr {
                    doc = doc.with("addr", addr.clone());
                }
                meta.extend_wire(doc).compact()
            }
            Request::RingStatus => "{\"op\":\"ring_status\"}".to_string(),
            Request::Status => "{\"op\":\"status\"}".to_string(),
            Request::Shutdown => "{\"op\":\"shutdown\"}".to_string(),
            Request::Sleep { ms } => format!("{{\"op\":\"sleep\",\"ms\":{ms}}}"),
        }
    }
}

/// The `analyze_profile` request frame for a canonically (compact)
/// rendered profile document — the one place its wire layout lives.
/// Option fields (schema, top, ...) precede the profile payload.
pub fn analyze_profile_frame(
    app: &str,
    variant: usize,
    profile_canon: &str,
    options: &WireOptions,
) -> String {
    let opts = options
        .extend_wire(Json::object())
        .compact()
        .trim_start_matches('{')
        .trim_end_matches('}')
        .to_string();
    let opts = if opts.is_empty() { opts } else { format!("{opts},") };
    format!(
        "{{\"op\":\"analyze_profile\",\"app\":{},\"variant\":{variant},{opts}\"profile\":{profile_canon}}}",
        Json::from(app).compact()
    )
}

/// The `profile_chunk` request frame for a canonically (compact)
/// rendered chunk document.
pub fn profile_chunk_frame(upload_id: u64, profile_canon: &str) -> String {
    format!("{{\"op\":\"profile_chunk\",\"upload_id\":{upload_id},\"profile\":{profile_canon}}}")
}

/// Rejects a `repeat` option on ops that advise on an already-gathered
/// profile: repeat profiling happens during `analyze`'s simulation, so
/// here it could only be silently ignored — and since every option is
/// part of the content address, accepting it would also split
/// byte-identical bodies across store entries (breaking the documented
/// chunked/whole cache sharing).
fn no_repeat(options: WireOptions, op: &str) -> Result<WireOptions, String> {
    if options.repeat != 1 {
        return Err(format!("`repeat` is not supported by `{op}` (use it on `analyze`)"));
    }
    Ok(options)
}

fn key_from(doc: &Json) -> Result<String, String> {
    Ok(doc
        .get("key")
        .ok_or("missing `key` field")?
        .as_str()
        .map_err(|_| "`key` must be a string")?
        .to_string())
}

fn upload_id_from(doc: &Json) -> Result<u64, String> {
    doc.get("upload_id")
        .ok_or("missing `upload_id` field")?
        .as_u64()
        .map_err(|_| "`upload_id` must be an unsigned integer".to_string())
}

fn job_from(doc: &Json) -> Result<AnalysisJob, String> {
    let app = doc
        .get("app")
        .ok_or("missing `app` field")?
        .as_str()
        .map_err(|_| "`app` must be a string")?;
    let variant = match doc.get("variant") {
        Some(v) => {
            usize::try_from(v.as_u64().map_err(|_| "`variant` must be an unsigned integer")?)
                .map_err(|_| "`variant` out of range")?
        }
        None => 0,
    };
    Ok(AnalysisJob::new(app, variant))
}

/// Wraps a stored/computed body into a success frame. `body` must be
/// compact JSON; it is spliced verbatim so cached responses stay
/// byte-identical to freshly computed ones.
pub fn ok_frame(cached: bool, body: &str) -> String {
    format!("{{\"ok\":true,\"cached\":{cached},\"result\":{body}}}")
}

/// An error frame.
pub fn error_frame(message: &str) -> String {
    Json::object().with("ok", false).with("error", message).compact()
}

/// The error frame a shard answers a forwarded request with when the
/// sender's roster epoch is behind its own. It embeds the receiver's
/// roster, so the one rejection doubles as the refresh — the sender
/// adopts it and re-routes instead of serving a wrong-owner answer.
pub fn stale_epoch_frame(epoch: u64, members: &[String]) -> String {
    Json::object()
        .with("ok", false)
        .with("error", format!("stale ring epoch: cluster is at {epoch}"))
        .with("stale_epoch", true)
        .with(
            "ring",
            Json::object()
                .with("epoch", epoch)
                .with("members", Json::Arr(members.iter().map(|m| m.as_str().into()).collect())),
        )
        .compact()
}

/// Recognizes a [`stale_epoch_frame`] response and extracts the
/// embedded roster. `None` for every other frame (including ordinary
/// errors).
pub fn parse_stale_epoch(frame: &str) -> Option<(u64, Vec<String>)> {
    let doc = Json::parse(frame).ok()?;
    if !doc.get("stale_epoch")?.as_bool().ok()? {
        return None;
    }
    let ring = doc.get("ring")?;
    let epoch = ring.get("epoch")?.as_u64().ok()?;
    let members = ring
        .get("members")?
        .as_array()
        .ok()?
        .iter()
        .filter_map(|m| m.as_str().ok().map(str::to_string))
        .collect();
    Some((epoch, members))
}

/// An error frame for a failed analysis, carrying the job identity like
/// [`AnalysisError::to_json`] does.
pub fn job_error_frame(err: &AnalysisError) -> String {
    Json::object()
        .with("ok", false)
        .with("app", err.job.app.clone())
        .with("variant", err.job.variant)
        .with("error", err.message.clone())
        .compact()
}

/// The deterministic `analyze` result body in the negotiated schema.
/// Deliberately excludes wall-clock time so the body is byte-identical
/// run to run (and hence cacheable by content address).
pub fn analyze_body(outcome: &AnalysisOutcome, schema: u32) -> Json {
    result_body(&outcome.job, &outcome.kernel, &outcome.profile, &outcome.report, schema)
}

/// The `analyze_profile` result body (same shape as [`analyze_body`]).
pub fn profile_body(
    job: &AnalysisJob,
    profile: &KernelProfile,
    report: &AdviceReport,
    schema: u32,
) -> Json {
    result_body(job, &profile.kernel, profile, report, schema)
}

fn result_body(
    job: &AnalysisJob,
    kernel: &str,
    profile: &KernelProfile,
    advice: &AdviceReport,
    schema: u32,
) -> Json {
    let envelope = Json::object()
        .with("app", job.app.clone())
        .with("variant", job.variant)
        .with("kernel", kernel.to_string())
        .with("cycles", profile.cycles)
        .with("total_samples", profile.total_samples)
        .with("issue_ratio", profile.issue_ratio());
    match schema {
        // v2: the versioned machine-readable report document.
        2 => envelope
            .with("schema", 2u64)
            .with("report", schema::report_to_json(advice))
            .with("text", report::render(advice, REPORT_TOP)),
        // v1 (compatibility renderer): the flat pre-v2 advice summary,
        // byte-identical to what pre-v2 daemons produced.
        _ => {
            let items: Vec<Json> = advice
                .items
                .iter()
                .enumerate()
                .map(|(rank, item)| {
                    Json::object()
                        .with("rank", rank + 1)
                        .with("optimizer", item.optimizer())
                        .with("estimated_speedup", item.estimated_speedup)
                        .with("matched_ratio", item.matched_ratio)
                })
                .collect();
            envelope
                .with("advice", Json::Arr(items))
                .with("text", report::render(advice, REPORT_TOP))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_ops() {
        let r = Request::parse(r#"{"op":"analyze","app":"rodinia/nw","variant":1}"#).unwrap();
        match r {
            Request::Analyze { job, options } => {
                assert_eq!(job, AnalysisJob::new("rodinia/nw", 1));
                assert_eq!(options, WireOptions::default(), "absent options mean v1 defaults");
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(matches!(Request::parse(r#"{"op":"status"}"#), Ok(Request::Status)));
        assert!(matches!(Request::parse(r#"{"op":"shutdown"}"#), Ok(Request::Shutdown)));
        assert!(matches!(
            Request::parse(r#"{"op":"sleep","ms":99999}"#),
            Ok(Request::Sleep { ms: MAX_SLEEP_MS })
        ));
    }

    #[test]
    fn variant_defaults_to_baseline() {
        let r = Request::parse(r#"{"op":"analyze","app":"rodinia/nw"}"#).unwrap();
        match r {
            Request::Analyze { job, .. } => assert_eq!(job.variant, 0),
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn negotiates_schema_and_options() {
        let line = r#"{"op":"analyze","app":"a","schema":2,"top":3,"categories":"parallel",
                       "optimizers":["block-increase","GPUThreadIncreaseOptimizer"],
                       "min_speedup":1.05,"hotspots":2,"evidence":false}"#
            .replace('\n', " ");
        let r = Request::parse(&line).unwrap();
        let Request::Analyze { options, .. } = r else { panic!("wrong parse") };
        assert_eq!(options.schema, 2);
        assert_eq!(options.request.top, Some(3));
        assert_eq!(options.request.categories, vec![gpa_core::OptimizerCategory::Parallel]);
        assert_eq!(
            options.request.optimizers,
            vec![gpa_core::OptimizerId::BlockIncrease, gpa_core::OptimizerId::ThreadIncrease]
        );
        assert_eq!(options.request.min_speedup, 1.05);
        assert_eq!(options.request.hotspots, 2);
        assert!(!options.request.evidence);
        // "v2" spelled as a string works too (what the CLI forwards).
        let r = Request::parse(r#"{"op":"analyze","app":"a","schema":"v2"}"#).unwrap();
        let Request::Analyze { options, .. } = r else { panic!("wrong parse") };
        assert_eq!(options.schema, 2);
    }

    #[test]
    fn rejects_bad_options_with_context() {
        for (line, needle) in [
            (r#"{"op":"analyze","app":"a","schema":3}"#, "unsupported schema"),
            (r#"{"op":"analyze","app":"a","schema":"v9"}"#, "unknown schema"),
            (r#"{"op":"analyze","app":"a","top":"all"}"#, "`top` must be"),
            (r#"{"op":"analyze","app":"a","categories":"warp-drive"}"#, "unknown category"),
            (r#"{"op":"analyze","app":"a","optimizers":["nope"]}"#, "unknown optimizer"),
            (r#"{"op":"analyze","app":"a","evidence":"yes"}"#, "`evidence` must be"),
        ] {
            let err = Request::parse(line).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn default_wire_frames_carry_no_option_fields() {
        let r = Request::Analyze {
            job: AnalysisJob::new("rodinia/nw", 1),
            options: WireOptions::default(),
        };
        assert_eq!(r.to_wire(), r#"{"op":"analyze","app":"rodinia/nw","variant":1}"#);
        let r =
            Request::Analyze { job: AnalysisJob::new("rodinia/nw", 1), options: WireOptions::v2() };
        assert_eq!(r.to_wire(), r#"{"op":"analyze","app":"rodinia/nw","variant":1,"schema":2}"#);
        let frame = analyze_profile_frame("a", 0, "{}", &WireOptions::default());
        assert_eq!(frame, r#"{"op":"analyze_profile","app":"a","variant":0,"profile":{}}"#);
        let frame = analyze_profile_frame("a", 0, "{}", &WireOptions::v2());
        assert_eq!(
            frame,
            r#"{"op":"analyze_profile","app":"a","variant":0,"schema":2,"profile":{}}"#
        );
        // Frames with options parse back to the same options.
        let r = Request::parse(&frame).unwrap_err();
        assert!(r.contains("bad `profile`"), "empty profile rejected downstream: {r}");
    }

    #[test]
    fn parses_repeat_and_renders_it_on_the_wire() {
        let r = Request::parse(r#"{"op":"analyze","app":"a","repeat":4}"#).unwrap();
        let Request::Analyze { options, .. } = r else { panic!("wrong parse") };
        assert_eq!(options.repeat, 4);
        let opts = WireOptions { repeat: 4, ..WireOptions::default() };
        let r = Request::Analyze { job: AnalysisJob::new("a", 0), options: opts };
        assert_eq!(r.to_wire(), r#"{"op":"analyze","app":"a","variant":0,"repeat":4}"#);
        for (line, needle) in [
            (r#"{"op":"analyze","app":"a","repeat":0}"#, "`repeat` must be at least 1"),
            (r#"{"op":"analyze","app":"a","repeat":"thrice"}"#, "`repeat` must be"),
            (r#"{"op":"analyze","app":"a","repeat":65}"#, "exceeds the limit of 64"),
            (r#"{"op":"analyze","app":"a","repeat":4294967295}"#, "exceeds the limit"),
        ] {
            let err = Request::parse(line).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn parses_the_memory_model_and_renders_it_on_the_wire() {
        let r = Request::parse(r#"{"op":"analyze","app":"a","mem":"hierarchy"}"#).unwrap();
        let Request::Analyze { options, .. } = r else { panic!("wrong parse") };
        assert!(options.hierarchy);
        let wire = Request::Analyze { job: AnalysisJob::new("a", 0), options: options.clone() };
        assert_eq!(wire.to_wire(), r#"{"op":"analyze","app":"a","variant":0,"mem":"hierarchy"}"#);
        // `"mem": "flat"` is accepted and normalizes to the default —
        // so it vanishes from re-rendered frames and content addresses.
        let r = Request::parse(r#"{"op":"analyze","app":"a","mem":"flat"}"#).unwrap();
        let Request::Analyze { options: flat, .. } = r else { panic!("wrong parse") };
        assert!(!flat.hierarchy);
        let plain = Request::Analyze { job: AnalysisJob::new("a", 0), options: flat };
        assert_eq!(plain.to_wire(), r#"{"op":"analyze","app":"a","variant":0}"#);
        assert_ne!(plain.cache_key(), wire.cache_key(), "memory model shapes the body");
        assert!(!plain.cache_key().unwrap().contains("|M"), "flat addresses carry no model marker");
        for (line, needle) in [
            (r#"{"op":"analyze","app":"a","mem":"l3"}"#, "unknown memory model `l3`"),
            (r#"{"op":"analyze","app":"a","mem":7}"#, "`mem` must be a string"),
        ] {
            let err = Request::parse(line).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn parses_the_chunked_upload_ops() {
        let r =
            Request::parse(r#"{"op":"profile_begin","app":"a","variant":1,"schema":2}"#).unwrap();
        let Request::ProfileBegin { job, options } = r else { panic!("wrong parse") };
        assert_eq!(job, AnalysisJob::new("a", 1));
        assert_eq!(options.schema, 2);
        assert!(matches!(
            Request::parse(r#"{"op":"profile_end","upload_id":7}"#),
            Ok(Request::ProfileEnd { upload_id: 7 })
        ));
        for (line, needle) in [
            (r#"{"op":"profile_begin"}"#, "missing `app`"),
            (r#"{"op":"profile_chunk","profile":{}}"#, "missing `upload_id`"),
            (r#"{"op":"profile_chunk","upload_id":"x","profile":{}}"#, "`upload_id` must be"),
            (r#"{"op":"profile_chunk","upload_id":0}"#, "missing `profile`"),
            (r#"{"op":"profile_chunk","upload_id":0,"profile":{}}"#, "bad `profile`"),
            (r#"{"op":"profile_end"}"#, "missing `upload_id`"),
        ] {
            let err = Request::parse(line).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
        // Upload ops are never cached directly; the merged result joins
        // the store through the synthesized analyze_profile.
        let begin = Request::parse(r#"{"op":"profile_begin","app":"a"}"#).unwrap();
        assert!(begin.cache_key().is_none());
        assert!(Request::ProfileEnd { upload_id: 0 }.cache_key().is_none());
        assert_eq!(begin.op(), "profile_begin");
        assert_eq!(
            profile_chunk_frame(3, "{}"),
            r#"{"op":"profile_chunk","upload_id":3,"profile":{}}"#
        );
    }

    #[test]
    fn parses_the_peer_store_ops() {
        // Content addresses contain NUL separators; they must survive
        // the wire as escaped JSON strings.
        let key = "analyze\0rodinia/nw\00\0s1|r1|t-|c|o|m1.001|h5|e1";
        let get = Request::StoreGet { key: key.to_string() };
        let parsed = Request::parse(&get.to_wire()).unwrap();
        let Request::StoreGet { key: parsed_key } = parsed else { panic!("wrong parse") };
        assert_eq!(parsed_key, key);
        let put = Request::StorePut {
            key: key.to_string(),
            body: "{\"v\":1}".to_string(),
            meta: PeerMeta::default(),
        };
        let parsed = Request::parse(&put.to_wire()).unwrap();
        let Request::StorePut { key: k2, body, meta } = parsed else { panic!("wrong parse") };
        assert_eq!((k2.as_str(), body.as_str()), (key, "{\"v\":1}"));
        assert_eq!(meta, PeerMeta::default(), "no meta on the wire, none parsed");
        assert!(put.cache_key().is_none(), "store ops are not themselves cacheable");
        assert_eq!(put.op(), "store_put");
        for (line, needle) in [
            (r#"{"op":"store_get"}"#, "missing `key`"),
            (r#"{"op":"store_get","key":7}"#, "`key` must be a string"),
            (r#"{"op":"store_put","key":"k"}"#, "missing `body`"),
        ] {
            let err = Request::parse(line).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn parses_the_membership_ops() {
        let meta = PeerMeta { epoch: Some(3), from: Some("127.0.0.1:7070".to_string()) };
        let join = Request::Join { addr: "127.0.0.1:7074".to_string(), meta: meta.clone() };
        assert_eq!(
            join.to_wire(),
            r#"{"op":"join","addr":"127.0.0.1:7074","epoch":3,"from":"127.0.0.1:7070"}"#
        );
        let parsed = Request::parse(&join.to_wire()).unwrap();
        let Request::Join { addr, meta: parsed_meta } = parsed else { panic!("wrong parse") };
        assert_eq!(addr, "127.0.0.1:7074");
        assert_eq!(parsed_meta, meta);

        // `leave` without an address asks the receiver to drain itself.
        let drain = Request::parse(r#"{"op":"leave"}"#).unwrap();
        assert!(matches!(drain, Request::Leave { addr: None, .. }));
        let third_party =
            Request::Leave { addr: Some("127.0.0.1:7074".to_string()), meta: meta.clone() };
        let parsed = Request::parse(&third_party.to_wire()).unwrap();
        let Request::Leave { addr: Some(addr), .. } = parsed else { panic!("wrong parse") };
        assert_eq!(addr, "127.0.0.1:7074");

        assert!(matches!(Request::parse(r#"{"op":"ring_status"}"#), Ok(Request::RingStatus)));
        assert_eq!(Request::RingStatus.to_wire(), r#"{"op":"ring_status"}"#);

        // Membership ops are handled where they arrive and never cached.
        for op in [
            Request::Join { addr: "a:1".to_string(), meta: PeerMeta::default() },
            Request::Leave { addr: None, meta: PeerMeta::default() },
            Request::RingStatus,
        ] {
            assert!(op.is_forwarded());
            assert!(op.cache_key().is_none());
        }
        for (line, needle) in [
            (r#"{"op":"join"}"#, "missing `addr`"),
            (r#"{"op":"join","addr":7}"#, "`addr` must be a string"),
            (r#"{"op":"join","addr":"a:1","epoch":"x"}"#, "`epoch` must be"),
            (r#"{"op":"leave","addr":7}"#, "`addr` must be a string"),
        ] {
            let err = Request::parse(line).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn store_put_carries_the_senders_epoch_for_anti_entropy() {
        let put = Request::StorePut {
            key: "k".to_string(),
            body: "{}".to_string(),
            meta: PeerMeta { epoch: Some(9), from: Some("a:1".to_string()) },
        };
        assert_eq!(
            put.to_wire(),
            r#"{"op":"store_put","key":"k","body":{},"epoch":9,"from":"a:1"}"#
        );
        let Request::StorePut { meta, .. } = Request::parse(&put.to_wire()).unwrap() else {
            panic!("wrong parse")
        };
        assert_eq!(meta.epoch, Some(9));
        assert_eq!(meta.from.as_deref(), Some("a:1"));
    }

    #[test]
    fn stale_epoch_frames_round_trip_and_ordinary_errors_do_not_match() {
        let members = vec!["a:1".to_string(), "b:2".to_string()];
        let frame = stale_epoch_frame(7, &members);
        assert!(!frame.contains('\n'));
        let doc = Json::parse(&frame).unwrap();
        assert!(!doc.field("ok").unwrap().as_bool().unwrap(), "stale epoch is an error frame");
        let (epoch, parsed) = parse_stale_epoch(&frame).expect("recognized");
        assert_eq!(epoch, 7);
        assert_eq!(parsed, members);
        assert!(parse_stale_epoch(&error_frame("boom")).is_none());
        assert!(parse_stale_epoch(&ok_frame(false, "{}")).is_none());
        assert!(parse_stale_epoch("not json").is_none());
    }

    #[test]
    fn forwarded_frames_carry_the_senders_epoch_after_the_marker() {
        let mut options = WireOptions::v2();
        options.forwarded = true;
        options.meta = PeerMeta { epoch: Some(4), from: Some("s:1".to_string()) };
        let r = Request::Analyze { job: AnalysisJob::new("a", 0), options };
        assert_eq!(
            r.to_wire(),
            r#"{"op":"analyze","app":"a","variant":0,"schema":2,"fwd":true,"epoch":4,"from":"s:1"}"#
        );
        let parsed = Request::parse(&r.to_wire()).unwrap();
        let Request::Analyze { options, .. } = &parsed else { panic!("wrong parse") };
        assert_eq!(options.meta.epoch, Some(4));
        // The epoch/sender tags never split the content address: the
        // same request routed at different epochs is one store entry.
        let plain = Request::parse(r#"{"op":"analyze","app":"a","schema":2}"#).unwrap();
        assert_eq!(plain.cache_key(), parsed.cache_key());
    }

    #[test]
    fn forwarding_marker_round_trips_and_stays_out_of_the_address() {
        let plain = Request::parse(r#"{"op":"analyze","app":"a","schema":2}"#).unwrap();
        assert!(!plain.is_forwarded());
        let relayed = plain.to_forwarded();
        assert!(relayed.is_forwarded());
        assert_eq!(
            relayed.to_wire(),
            r#"{"op":"analyze","app":"a","variant":0,"schema":2,"fwd":true}"#
        );
        let parsed = Request::parse(&relayed.to_wire()).unwrap();
        assert!(parsed.is_forwarded(), "the marker survives the wire");
        // Forwarded and direct requests must land on ONE store entry —
        // the relay property depends on it.
        assert_eq!(plain.cache_key(), parsed.cache_key());
        // Ops with no forwarding path are always handled where they
        // arrive.
        assert!(Request::Status.is_forwarded());
        assert!(matches!(Request::Status.to_forwarded(), Request::Status));
    }

    #[test]
    fn repeat_is_part_of_the_content_address() {
        let plain = Request::parse(r#"{"op":"analyze","app":"a"}"#).unwrap();
        let repeated = Request::parse(r#"{"op":"analyze","app":"a","repeat":3}"#).unwrap();
        assert_ne!(plain.cache_key(), repeated.cache_key());
    }

    #[test]
    fn repeat_is_rejected_on_profile_submission_ops() {
        // Repeat profiling happens during `analyze`'s simulation; on the
        // submission ops it would be silently ignored *and* fragment the
        // content-addressed store, so the parser refuses it outright.
        for (line, op) in [
            (r#"{"op":"analyze_profile","app":"a","repeat":2,"profile":{}}"#, "analyze_profile"),
            (r#"{"op":"profile_begin","app":"a","repeat":2}"#, "profile_begin"),
        ] {
            let err = Request::parse(line).unwrap_err();
            assert!(err.contains(&format!("`repeat` is not supported by `{op}`")), "{line}: {err}");
        }
    }

    #[test]
    fn rejects_malformed_requests_with_context() {
        for (line, needle) in [
            ("not json", "malformed request"),
            ("{}", "missing `op`"),
            (r#"{"op":"frobnicate"}"#, "unknown op"),
            (r#"{"op":"analyze"}"#, "missing `app`"),
            (r#"{"op":"analyze","app":7}"#, "`app` must be a string"),
            (r#"{"op":"analyze_profile","app":"x"}"#, "missing `profile`"),
            (r#"{"op":"analyze_profile","app":"x","profile":{}}"#, "bad `profile`"),
        ] {
            let err = Request::parse(line).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn cache_keys_separate_ops_variants_and_options() {
        let a = Request::parse(r#"{"op":"analyze","app":"a","variant":0}"#).unwrap();
        let b = Request::parse(r#"{"op":"analyze","app":"a","variant":1}"#).unwrap();
        assert_ne!(a.cache_key(), b.cache_key());
        let v2 = Request::parse(r#"{"op":"analyze","app":"a","variant":0,"schema":2}"#).unwrap();
        assert_ne!(a.cache_key(), v2.cache_key(), "negotiated schema is part of the address");
        let top = Request::parse(r#"{"op":"analyze","app":"a","variant":0,"top":1}"#).unwrap();
        assert_ne!(a.cache_key(), top.cache_key(), "options are part of the address");
        assert!(Request::Status.cache_key().is_none());
        assert!(Request::Sleep { ms: 1 }.cache_key().is_none());

        // Membership filters are order-insensitive, so permuted or
        // duplicated filter lists share one content address.
        let x = Request::parse(
            r#"{"op":"analyze","app":"a","categories":["parallel","latency-hiding"]}"#,
        )
        .unwrap();
        let y = Request::parse(
            r#"{"op":"analyze","app":"a","categories":["latency-hiding","parallel","parallel"]}"#,
        )
        .unwrap();
        assert_eq!(x.cache_key(), y.cache_key(), "equivalent filters, one store entry");
    }

    #[test]
    fn frames_are_single_line_json() {
        let ok = ok_frame(true, "{\"x\":1}");
        let doc = Json::parse(&ok).unwrap();
        assert!(doc.field("ok").unwrap().as_bool().unwrap());
        assert!(doc.field("cached").unwrap().as_bool().unwrap());
        assert_eq!(doc.field("result").unwrap().field("x").unwrap().as_u64().unwrap(), 1);
        let err = error_frame("bad\nthing");
        assert!(!err.contains('\n'), "frames must be newline-free");
        assert!(Json::parse(&err).is_ok());
    }
}
