//! A minimal JSON document model with a parser and pretty-printer.
//!
//! The build environment has no network access, so this crate replaces
//! `serde_json` for the few places the workspace (de)serializes JSON:
//! profile snapshots on disk and the CLI's machine-readable output.
//! Object entries preserve insertion order, so rendered output is stable
//! across runs; numbers keep full `u64`/`i64` precision instead of going
//! through `f64`.

use std::fmt;

/// A JSON number preserving integer precision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Num {
    /// An unsigned integer.
    U(u64),
    /// A negative integer.
    I(i64),
    /// A float.
    F(f64),
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Num(Num),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion-ordered).
    Obj(Vec<(String, Json)>),
}

/// A parse or access error, with enough context to locate the problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    msg: String,
}

impl JsonError {
    fn new(msg: impl Into<String>) -> Self {
        JsonError { msg: msg.into() }
    }

    /// A caller-supplied error (for domain validation layered on top of
    /// the document model, e.g. a malformed map key).
    pub fn from_msg(msg: impl Into<String>) -> Self {
        Self::new(msg)
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json: {}", self.msg)
    }
}

impl std::error::Error for JsonError {}

/// The crate's result type.
pub type Result<T> = std::result::Result<T, JsonError>;

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Num(Num::U(v))
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::Num(Num::U(v.into()))
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(Num::U(v as u64))
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Self {
        if v >= 0 {
            Json::Num(Num::U(v as u64))
        } else {
            Json::Num(Num::I(v))
        }
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(Num::F(v))
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends a field to an object (panics on non-objects: builder
    /// misuse is a programming error, not a data error).
    #[must_use]
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(entries) => entries.push((key.to_string(), value.into())),
            _ => panic!("Json::with on a non-object"),
        }
        self
    }

    /// Looks up an object field.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks up a required object field.
    ///
    /// # Errors
    ///
    /// When `self` is not an object or the field is missing.
    pub fn field(&self, key: &str) -> Result<&Json> {
        self.get(key).ok_or_else(|| JsonError::new(format!("missing field `{key}`")))
    }

    /// The value as `u64`.
    ///
    /// # Errors
    ///
    /// When the value is not an unsigned integer.
    pub fn as_u64(&self) -> Result<u64> {
        match self {
            Json::Num(Num::U(v)) => Ok(*v),
            _ => Err(JsonError::new(format!("expected unsigned integer, got {self}"))),
        }
    }

    /// The value as `u32`.
    ///
    /// # Errors
    ///
    /// When the value is not an unsigned integer fitting `u32`.
    pub fn as_u32(&self) -> Result<u32> {
        u32::try_from(self.as_u64()?).map_err(|_| JsonError::new("integer exceeds u32"))
    }

    /// The value as `f64` (integers widen).
    ///
    /// # Errors
    ///
    /// When the value is not a number.
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Json::Num(Num::U(v)) => Ok(*v as f64),
            Json::Num(Num::I(v)) => Ok(*v as f64),
            Json::Num(Num::F(v)) => Ok(*v),
            _ => Err(JsonError::new(format!("expected number, got {self}"))),
        }
    }

    /// The value as `&str`.
    ///
    /// # Errors
    ///
    /// When the value is not a string.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Json::Str(s) => Ok(s),
            _ => Err(JsonError::new(format!("expected string, got {self}"))),
        }
    }

    /// The value as `bool`.
    ///
    /// # Errors
    ///
    /// When the value is not a boolean.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Json::Bool(b) => Ok(*b),
            _ => Err(JsonError::new(format!("expected bool, got {self}"))),
        }
    }

    /// The value as an array slice.
    ///
    /// # Errors
    ///
    /// When the value is not an array.
    pub fn as_array(&self) -> Result<&[Json]> {
        match self {
            Json::Arr(items) => Ok(items),
            _ => Err(JsonError::new(format!("expected array, got {self}"))),
        }
    }

    /// The value's object entries.
    ///
    /// # Errors
    ///
    /// When the value is not an object.
    pub fn entries(&self) -> Result<&[(String, Json)]> {
        match self {
            Json::Obj(entries) => Ok(entries),
            _ => Err(JsonError::new(format!("expected object, got {self}"))),
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// On malformed input (with byte offset context).
    pub fn parse(text: &str) -> Result<Json> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }

    /// Renders with two-space indentation and a trailing newline-free
    /// final line (like `serde_json::to_string_pretty`).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    /// Renders on one line with no interior whitespace (like
    /// `serde_json::to_string`). Because strings escape every control
    /// character, the output never contains a raw newline — which is what
    /// makes it usable as one frame of a newline-delimited wire protocol.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: Num) {
    match n {
        Num::U(v) => out.push_str(&v.to_string()),
        Num::I(v) => out.push_str(&v.to_string()),
        Num::F(v) => {
            if v.is_finite() {
                // Keep floats round-trippable; force a decimal point so
                // they re-parse as floats.
                let s = format!("{v}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // JSON has no Inf/NaN; serde_json emits null.
                out.push_str("null");
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.pretty())
    }
}

/// Maximum container nesting the parser accepts. Profiles and CLI
/// output nest a handful of levels; the cap turns hostile or corrupt
/// deeply-nested input into an `Err` instead of a stack overflow.
const MAX_DEPTH: u32 = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: u32,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn enter(&mut self) -> Result<()> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json> {
        self.expect(b'{')?;
        self.enter()?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else { return Err(self.err("unterminated string")) };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by our own
                            // output (which never escapes above 0x1F).
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk =
                        self.bytes.get(start..end).ok_or_else(|| self.err("truncated utf-8"))?;
                    let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ascii");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::Num(Num::U(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Num(Num::I(v)));
            }
        }
        text.parse::<f64>().map(|v| Json::Num(Num::F(v))).map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_accessors() {
        let doc = Json::object()
            .with("name", "axpy")
            .with("cycles", 18_446_744_073_709_551_615u64)
            .with("ratio", 0.5)
            .with("ok", true)
            .with("tags", vec!["a", "b"]);
        assert_eq!(doc.field("name").unwrap().as_str().unwrap(), "axpy");
        assert_eq!(doc.field("cycles").unwrap().as_u64().unwrap(), u64::MAX);
        assert_eq!(doc.field("ratio").unwrap().as_f64().unwrap(), 0.5);
        assert!(doc.field("ok").unwrap().as_bool().unwrap());
        assert_eq!(doc.field("tags").unwrap().as_array().unwrap().len(), 2);
        assert!(doc.field("missing").is_err());
    }

    #[test]
    fn round_trip_preserves_structure_and_precision() {
        let doc = Json::object()
            .with("big", u64::MAX)
            .with("neg", -42i64)
            .with("float", 1.25)
            .with("text", "line\n\"quoted\" \\ tab\t µ")
            .with("empty_arr", Json::Arr(vec![]))
            .with("empty_obj", Json::object())
            .with("nested", Json::object().with("k", vec![1u64, 2, 3]));
        let text = doc.pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(doc, back);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"a\" : [ 1 , -2.5e1 , \"\\u0041\" ] } ").unwrap();
        let arr = v.field("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64().unwrap(), 1);
        assert_eq!(arr[1].as_f64().unwrap(), -25.0);
        assert_eq!(arr[2].as_str().unwrap(), "A");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1.2.3", "\"unterminated", "{} junk"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn compact_is_one_line_and_round_trips() {
        let doc = Json::object()
            .with("text", "line\nbreak")
            .with("xs", vec![1u64, 2])
            .with("nested", Json::object().with("f", 0.5));
        let line = doc.compact();
        assert!(!line.contains('\n'), "compact output must be newline-free: {line:?}");
        assert_eq!(line, r#"{"text":"line\nbreak","xs":[1,2],"nested":{"f":0.5}}"#);
        assert_eq!(Json::parse(&line).unwrap(), doc);
    }

    #[test]
    fn depth_limit_is_an_error_not_a_crash() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(Json::parse(&deep).is_err(), "over-deep input rejected cleanly");
        let ok = "[".repeat(64) + &"]".repeat(64);
        assert!(Json::parse(&ok).is_ok(), "reasonable nesting accepted");
    }
}
